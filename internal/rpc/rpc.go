package rpc

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"flashflow/internal/wire"
)

// Protocol version bounds this build speaks. A connection negotiates the
// highest version inside both sides' ranges during the hello exchange and
// fails closed (ErrVersionSkew) when the ranges are disjoint, so a
// mixed-version fleet degrades to an explicit error instead of one side
// misparsing the other's frames.
const (
	VersionMin uint16 = 1
	VersionMax uint16 = 1
)

// helloMagic opens every connection. Four fixed bytes before anything
// version-dependent: a peer that is not speaking this protocol at all
// (a stray HTTP client, a measurement-plane dialer) is rejected on the
// first frame with ErrBadHello rather than a confusing auth failure.
const helloMagic = "FFRP"

// FrameType identifies one protocol frame.
type FrameType uint8

// Frame types. The hello/welcome pair negotiates the version, the
// auth/authok pair authenticates the client (mirroring the measurement
// plane's nonce challenge), and request/response/error carry the RPC
// traffic. Reject may replace welcome, authok, or a response when the
// server refuses the connection.
const (
	// FrameHello is the client's opening frame: helloMagic plus the
	// client's supported version range.
	FrameHello FrameType = 1
	// FrameWelcome answers hello with the negotiated version and the
	// server's 32-byte auth nonce.
	FrameWelcome FrameType = 2
	// FrameAuth carries the client's public key and its signature over
	// AuthMessage(version, nonce).
	FrameAuth FrameType = 3
	// FrameAuthOK acknowledges successful authentication.
	FrameAuthOK FrameType = 4
	// FrameReject carries a human-readable refusal (version skew, unknown
	// key, bad signature) and precedes the server closing the connection.
	FrameReject FrameType = 5
	// FrameRequest is one call: a method byte followed by the body.
	FrameRequest FrameType = 6
	// FrameResponse is a successful call's reply body.
	FrameResponse FrameType = 7
	// FrameError is a handler-level failure: the connection stays healthy,
	// the payload is the error message (surfaced as *ServerError).
	FrameError FrameType = 8
)

// MethodSubmitV3BW is the control plane's submission method: the request
// body is an encoded dirauth.Submission, the response body is the merge
// node's plain-text acknowledgement. Method numbers are part of the
// protocol surface; never renumber, only append.
const MethodSubmitV3BW uint8 = 1

// MaxPayload bounds one frame's payload. Submissions carry whole v3bw
// bodies, so the bound is sized for bandwidth files (a million-relay view
// is ~50 MB), not for control chatter.
const MaxPayload = 64 << 20

// frameHeaderLen is the 4-byte length prefix plus the type byte — the
// same framing discipline as the measurement plane's control frames.
const frameHeaderLen = 5

// Protocol errors.
var (
	// ErrFrameTooLarge marks a frame whose declared payload exceeds
	// MaxPayload; the reader refuses it before allocating.
	ErrFrameTooLarge = errors.New("rpc: frame payload too large")
	// ErrBadFrame marks a structurally invalid frame (wrong type for the
	// protocol state, malformed payload).
	ErrBadFrame = errors.New("rpc: malformed frame")
	// ErrBadHello marks an opening frame without the protocol magic.
	ErrBadHello = errors.New("rpc: peer did not send a protocol hello")
	// ErrVersionSkew marks disjoint version ranges between the peers.
	ErrVersionSkew = errors.New("rpc: no protocol version in common")
	// ErrNotAuthorized marks a client key outside the server's allowed set.
	ErrNotAuthorized = errors.New("rpc: client key not authorized")
	// ErrAuthRejected marks a failed signature check or a server-side
	// rejection during the handshake.
	ErrAuthRejected = errors.New("rpc: authentication rejected")
	// ErrClosed marks use of a closed client or server.
	ErrClosed = errors.New("rpc: closed")
)

// ServerError is a handler-level failure relayed to the caller. The
// connection that carried it remains usable: handler errors are part of
// the protocol, not transport faults, so the client does not redial.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "rpc: server: " + e.Msg }

// WriteFrame writes one length-prefixed frame. Header and payload go out
// in a single Write so a frame is never split across syscalls — the same
// rule the measurement plane's WriteFrame follows, and the property the
// torn-frame tests rely on when they cut byte streams at every offset.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrFrameTooLarge
	}
	buf := make([]byte, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	buf[4] = byte(t)
	copy(buf[frameHeaderLen:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("rpc: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one frame, allocating a payload buffer the caller owns.
// A declared length beyond MaxPayload fails before any payload allocation,
// so a corrupt or hostile length prefix cannot drive a huge allocation. A
// truncated stream surfaces as io.ErrUnexpectedEOF (or io.EOF exactly at
// a frame boundary) — torn tails are detected, never silently absorbed,
// mirroring the durable store's torn-tail discipline.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("rpc: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxPayload {
		return 0, nil, ErrFrameTooLarge
	}
	var payload []byte
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, fmt.Errorf("rpc: read frame payload: %w", err)
		}
	}
	return FrameType(hdr[4]), payload, nil
}

// nonceLen is the server challenge length, matching the measurement
// plane's handshake.
const nonceLen = 32

// authPrefix domain-separates RPC auth signatures from every other
// ed25519 use of the same key (v3bw submissions, the measurement-plane
// handshake).
const authPrefix = "flashflow-rpc-auth\x00"

// AuthMessage is the byte string a client signs to authenticate: the
// domain prefix, the negotiated version, then the server's nonce. Binding
// the version means a middle party cannot splice a downgraded welcome
// into an otherwise honest handshake — the signature would cover the
// wrong version and verification fails.
func AuthMessage(version uint16, nonce []byte) []byte {
	msg := make([]byte, 0, len(authPrefix)+2+len(nonce))
	msg = append(msg, authPrefix...)
	msg = binary.BigEndian.AppendUint16(msg, version)
	return append(msg, nonce...)
}

// negotiate picks the highest version inside both ranges.
func negotiate(aMin, aMax, bMin, bMax uint16) (uint16, bool) {
	lo, hi := aMin, aMax
	if bMin > lo {
		lo = bMin
	}
	if bMax < hi {
		hi = bMax
	}
	if lo > hi {
		return 0, false
	}
	return hi, true
}

// DeriveIdentity deterministically derives an ed25519 identity from a
// shared secret and a node name: the key seed is
// SHA-256("flashflow-rpc-identity" || secret || name). It exists so the
// multi-process smoke recipes (OPERATIONS.md) can stand up a 3-BWAuth +
// 1-dirauth topology with one -auth-secret flag instead of provisioning
// key files; a production deployment distributes real per-node keys and
// never uses it.
func DeriveIdentity(secret, name string) wire.Identity {
	h := sha256.New()
	h.Write([]byte("flashflow-rpc-identity\x00"))
	h.Write([]byte(secret))
	h.Write([]byte{0})
	h.Write([]byte(name))
	priv := ed25519.NewKeyFromSeed(h.Sum(nil))
	return wire.Identity{Pub: priv.Public().(ed25519.PublicKey), Priv: priv}
}
