package rpc

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"flashflow/internal/metrics"
	"flashflow/internal/wire"
)

// pipeDialer returns a Dial func whose every call hands the server a
// fresh net.Pipe end via srv.ServeConn — the interface/transport
// separation that keeps every protocol path sockets-free in tests.
func pipeDialer(t *testing.T, srv *Server) func(context.Context) (io.ReadWriteCloser, error) {
	t.Helper()
	return func(ctx context.Context) (io.ReadWriteCloser, error) {
		client, server := net.Pipe()
		go func() { _ = srv.ServeConn(server) }()
		return client, nil
	}
}

func newTestIdentity(t *testing.T) wire.Identity {
	t.Helper()
	id, err := wire.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// echoServer builds a server whose handler echoes method+body back.
func echoServer(t *testing.T, authorized ...ed25519.PublicKey) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Authorized: authorized,
		Handler: func(peer ed25519.PublicKey, method uint8, body []byte) ([]byte, error) {
			out := append([]byte{method}, body...)
			return out, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestHandshakeAndCall(t *testing.T) {
	id := newTestIdentity(t)
	srv := echoServer(t, id.Pub)
	defer srv.Close()
	ctr := metrics.NewCounters()
	cli, err := NewClient(ClientConfig{Dial: pipeDialer(t, srv), Identity: id, Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	resp, err := cli.Call(context.Background(), 7, []byte("hello"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if want := append([]byte{7}, []byte("hello")...); !bytes.Equal(resp, want) {
		t.Fatalf("echo = %q, want %q", resp, want)
	}
	if v := cli.Version(); v != VersionMax {
		t.Fatalf("negotiated version %d, want %d", v, VersionMax)
	}
	// Second call reuses the connection: no second dial.
	if _, err := cli.Call(context.Background(), 1, nil); err != nil {
		t.Fatal(err)
	}
	if got := ctr.Get("coord_rpc_dials"); got != 1 {
		t.Fatalf("dials = %d, want 1 (connection should be reused)", got)
	}
	if got := ctr.Get("coord_rpc_calls"); got != 2 {
		t.Fatalf("calls = %d, want 2", got)
	}
}

func TestLargeBody(t *testing.T) {
	id := newTestIdentity(t)
	srv := echoServer(t, id.Pub)
	defer srv.Close()
	cli, err := NewClient(ClientConfig{Dial: pipeDialer(t, srv), Identity: id})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	body := make([]byte, 1<<20)
	for i := range body {
		body[i] = byte(i * 31)
	}
	resp, err := cli.Call(context.Background(), 9, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != len(body)+1 || !bytes.Equal(resp[1:], body) {
		t.Fatal("large body did not round-trip")
	}
}

func TestUnauthorizedKeyRejected(t *testing.T) {
	authorized := newTestIdentity(t)
	stranger := newTestIdentity(t)
	srv := echoServer(t, authorized.Pub)
	defer srv.Close()
	ctr := metrics.NewCounters()
	cli, err := NewClient(ClientConfig{Dial: pipeDialer(t, srv), Identity: stranger, Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	_, err = cli.Call(context.Background(), 1, nil)
	if !errors.Is(err, ErrAuthRejected) {
		t.Fatalf("stranger call error = %v, want ErrAuthRejected", err)
	}
	if got := ctr.Get("coord_rpc_call_errors"); got != 1 {
		t.Fatalf("call_errors = %d, want 1", got)
	}
}

func TestVersionSkewRejected(t *testing.T) {
	id := newTestIdentity(t)
	srv := echoServer(t, id.Pub)
	defer srv.Close()
	cli, err := NewClient(ClientConfig{
		Dial:       pipeDialer(t, srv),
		Identity:   id,
		VersionMin: VersionMax + 1,
		VersionMax: VersionMax + 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	_, err = cli.Call(context.Background(), 1, nil)
	if !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("skewed client error = %v, want ErrVersionSkew", err)
	}
}

// TestDowngradeSignatureBinding proves the version is bound into the auth
// signature: a signature over the wrong version must not verify, even
// from an authorized key.
func TestDowngradeSignatureBinding(t *testing.T) {
	nonce := bytes.Repeat([]byte{0xAB}, nonceLen)
	id := newTestIdentity(t)
	sigV1 := ed25519.Sign(id.Priv, AuthMessage(1, nonce))
	if !ed25519.Verify(id.Pub, AuthMessage(1, nonce), sigV1) {
		t.Fatal("honest signature should verify")
	}
	if ed25519.Verify(id.Pub, AuthMessage(2, nonce), sigV1) {
		t.Fatal("signature over version 1 must not verify as version 2")
	}
}

func TestServerErrorKeepsConnection(t *testing.T) {
	id := newTestIdentity(t)
	srv, err := NewServer(ServerConfig{
		Authorized: []ed25519.PublicKey{id.Pub},
		Handler: func(peer ed25519.PublicKey, method uint8, body []byte) ([]byte, error) {
			if method == 0xFF {
				return nil, errors.New("rejected by handler")
			}
			return []byte("ok"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctr := metrics.NewCounters()
	cli, err := NewClient(ClientConfig{Dial: pipeDialer(t, srv), Identity: id, Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	_, err = cli.Call(context.Background(), 0xFF, nil)
	var se *ServerError
	if !errors.As(err, &se) || se.Msg != "rejected by handler" {
		t.Fatalf("handler rejection = %v, want *ServerError(rejected by handler)", err)
	}
	// The connection survived the handler error: the next call succeeds
	// without a redial.
	if _, err := cli.Call(context.Background(), 1, nil); err != nil {
		t.Fatalf("call after handler error: %v", err)
	}
	if got := ctr.Get("coord_rpc_dials"); got != 1 {
		t.Fatalf("dials = %d, want 1 (handler errors must not drop the conn)", got)
	}
}

// TestRedialAfterConnDrop: a call on a pooled connection that died since
// the last use redials exactly once and succeeds.
func TestRedialAfterConnDrop(t *testing.T) {
	id := newTestIdentity(t)
	srv := echoServer(t, id.Pub)
	defer srv.Close()

	var mu sync.Mutex
	var serverEnds []io.Closer
	dial := func(ctx context.Context) (io.ReadWriteCloser, error) {
		client, server := net.Pipe()
		mu.Lock()
		serverEnds = append(serverEnds, server)
		mu.Unlock()
		go func() { _ = srv.ServeConn(server) }()
		return client, nil
	}
	ctr := metrics.NewCounters()
	cli, err := NewClient(ClientConfig{Dial: dial, Identity: id, Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Call(context.Background(), 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Kill the server side of the live connection behind the client's back.
	mu.Lock()
	serverEnds[0].Close()
	mu.Unlock()

	if _, err := cli.Call(context.Background(), 2, []byte("b")); err != nil {
		t.Fatalf("call after conn drop: %v (want transparent redial)", err)
	}
	if got := ctr.Get("coord_rpc_retries"); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	if got := ctr.Get("coord_rpc_dials"); got != 2 {
		t.Fatalf("dials = %d, want 2", got)
	}
}

// TestRealTCP runs the same handshake over a real localhost listener —
// the production transport — including the context deadline mapping.
func TestRealTCP(t *testing.T) {
	id := newTestIdentity(t)
	srv := echoServer(t, id.Pub)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := NewClient(ClientConfig{
		Dial: func(ctx context.Context) (io.ReadWriteCloser, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr.String())
		},
		Identity: id,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := cli.Call(ctx, 3, []byte("tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if want := append([]byte{3}, []byte("tcp")...); !bytes.Equal(resp, want) {
		t.Fatalf("echo over TCP = %q, want %q", resp, want)
	}
}

func TestDeriveIdentityDeterministic(t *testing.T) {
	a := DeriveIdentity("secret", "bw0")
	b := DeriveIdentity("secret", "bw0")
	if !bytes.Equal(a.Pub, b.Pub) {
		t.Fatal("same secret+name must derive the same key")
	}
	c := DeriveIdentity("secret", "bw1")
	if bytes.Equal(a.Pub, c.Pub) {
		t.Fatal("different names must derive different keys")
	}
	d := DeriveIdentity("other", "bw0")
	if bytes.Equal(a.Pub, d.Pub) {
		t.Fatal("different secrets must derive different keys")
	}
	msg := []byte("sign me")
	if !ed25519.Verify(a.Pub, msg, ed25519.Sign(a.Priv, msg)) {
		t.Fatal("derived keypair must be a working ed25519 pair")
	}
}

func TestClosedClientAndServer(t *testing.T) {
	id := newTestIdentity(t)
	srv := echoServer(t, id.Pub)
	cli, err := NewClient(ClientConfig{Dial: pipeDialer(t, srv), Identity: id})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(context.Background(), 1, nil); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if _, err := cli.Call(context.Background(), 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("call on closed client = %v, want ErrClosed", err)
	}
	srv.Close()
	client, server := net.Pipe()
	defer client.Close()
	if err := srv.ServeConn(server); !errors.Is(err, ErrClosed) {
		t.Fatalf("ServeConn on closed server = %v, want ErrClosed", err)
	}
}
