package rpc

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestTornFrame mirrors the durable store's torn-tail discipline at the
// RPC layer: a valid frame stream cut at every possible byte offset must
// produce either a complete frame followed by io.EOF (cut exactly at a
// frame boundary) or a clean truncation error — never a garbage frame
// and never a hang.
func TestTornFrame(t *testing.T) {
	var full bytes.Buffer
	if err := WriteFrame(&full, FrameRequest, []byte("first-payload")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&full, FrameResponse, bytes.Repeat([]byte{0xEE}, 300)); err != nil {
		t.Fatal(err)
	}
	stream := full.Bytes()
	boundary1 := frameHeaderLen + len("first-payload")

	for cut := 0; cut <= len(stream); cut++ {
		r := bytes.NewReader(stream[:cut])
		var framesRead int
		var finalErr error
		for {
			ft, payload, err := ReadFrame(r)
			if err != nil {
				finalErr = err
				break
			}
			switch framesRead {
			case 0:
				if ft != FrameRequest || string(payload) != "first-payload" {
					t.Fatalf("cut=%d: frame 0 corrupted: type=%d payload=%q", cut, ft, payload)
				}
			case 1:
				if ft != FrameResponse || len(payload) != 300 {
					t.Fatalf("cut=%d: frame 1 corrupted: type=%d len=%d", cut, ft, len(payload))
				}
			default:
				t.Fatalf("cut=%d: phantom frame %d", cut, framesRead)
			}
			framesRead++
		}
		wantFrames := 0
		if cut >= boundary1 {
			wantFrames = 1
		}
		if cut == len(stream) {
			wantFrames = 2
		}
		if framesRead != wantFrames {
			t.Fatalf("cut=%d: read %d frames, want %d", cut, framesRead, wantFrames)
		}
		atBoundary := cut == 0 || cut == boundary1 || cut == len(stream)
		if atBoundary {
			if finalErr != io.EOF {
				t.Fatalf("cut=%d (boundary): err = %v, want io.EOF", cut, finalErr)
			}
		} else if !errors.Is(finalErr, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d (torn): err = %v, want io.ErrUnexpectedEOF", cut, finalErr)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	if err := WriteFrame(io.Discard, FrameRequest, make([]byte, MaxPayload+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write oversized = %v, want ErrFrameTooLarge", err)
	}
	// A hostile length prefix must be refused before any allocation.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(FrameRequest)}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read hostile length = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	cases := [][]byte{nil, {}, {0}, []byte("payload"), bytes.Repeat([]byte{7}, 65536)}
	for _, payload := range cases {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, FrameAuth, payload); err != nil {
			t.Fatal(err)
		}
		ft, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if ft != FrameAuth || !bytes.Equal(got, payload) {
			t.Fatalf("round-trip mismatch: type=%d len(got)=%d len(want)=%d", ft, len(got), len(payload))
		}
	}
}

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must never
// panic, and whatever it parses must re-encode to the bytes it consumed.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, FrameRequest, []byte("seed"))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 1})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 2, 6, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		consumed := 0
		for {
			ft, payload, err := ReadFrame(r)
			if err != nil {
				break
			}
			var re bytes.Buffer
			if werr := WriteFrame(&re, ft, payload); werr != nil {
				t.Fatalf("re-encode of parsed frame failed: %v", werr)
			}
			end := consumed + re.Len()
			if end > len(data) || !bytes.Equal(re.Bytes(), data[consumed:end]) {
				t.Fatalf("parsed frame does not re-encode to its source bytes at offset %d", consumed)
			}
			consumed = end
		}
	})
}
