package obs

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"flashflow/internal/dirauth"
)

// v3bwSnapshot is one immutable pre-rendered bandwidth-file document. All
// fields — including the pre-formatted header values — are computed once
// at publication, so the serve path touches nothing but this struct and
// performs zero allocations per request.
type v3bwSnapshot struct {
	body    []byte
	round   int64
	modTime time.Time
	// Pre-built header value slices: assigning a ready []string into the
	// http.Header map is the only header write the serve path does, so a
	// request never allocates the []string{...} literal Header.Set would.
	etag          []string
	lastModified  []string
	contentLength []string
}

var (
	v3bwContentType = []string{"text/plain; charset=utf-8"}
	jsonContentType = []string{"application/json; charset=utf-8"}
)

// SnapshotHolder owns the atomically swapped /v3bw document. The
// coordinator's OnSnapshot hook publishes each round's merged bandwidth
// file through Publish (one render per round); ServeHTTP serves the
// cached body to any number of concurrent directory fetches without
// locks, renders, or per-request allocations. A holder with no published
// snapshot answers 503 so load balancers hold traffic until the first
// round completes.
//
// Ownership rule: the rendered body is immutable once published — every
// reader shares the same backing array, and the next Publish swaps the
// pointer rather than mutating bytes in place. Writers must go through
// Publish/set; there is deliberately no way to get a mutable reference
// out of the holder.
type SnapshotHolder struct {
	cur     atomic.Pointer[v3bwSnapshot]
	renders atomic.Int64
}

// Publish renders the bandwidth file once and swaps it in as the served
// snapshot, stamping Last-Modified with now.
func (h *SnapshotHolder) Publish(round int, f *dirauth.BandwidthFile, now time.Time) error {
	body, etag, err := f.Render()
	if err != nil {
		return err
	}
	h.renders.Add(1)
	h.set(&v3bwSnapshot{
		body:          body,
		round:         int64(round),
		modTime:       now,
		etag:          []string{etag},
		lastModified:  []string{now.UTC().Format(http.TimeFormat)},
		contentLength: []string{strconv.Itoa(len(body))},
	})
	return nil
}

func (h *SnapshotHolder) set(s *v3bwSnapshot) { h.cur.Store(s) }

// Renders reports how many times a bandwidth file has been rendered into
// a snapshot body — the serve-v3bw perf gate asserts this stays flat
// while requests (conditional or not) are being answered.
func (h *SnapshotHolder) Renders() int64 { return h.renders.Load() }

// Info returns the current snapshot's round, body size, ETag, and
// modification time (ok=false before the first Publish).
func (h *SnapshotHolder) Info() (round int64, size int, etag string, modTime time.Time, ok bool) {
	s := h.cur.Load()
	if s == nil {
		return 0, 0, "", time.Time{}, false
	}
	return s.round, len(s.body), s.etag[0], s.modTime, true
}

// ServeHTTP serves the current snapshot: a strong-ETag revalidation via
// If-None-Match answers 304 with no body bytes and no render, anything
// else gets the cached body. HEAD is supported (headers only). This is
// the handler a Tor-scale client population hammers, so the hot path is
// one atomic load, three pre-built header assignments, and one Write.
func (h *SnapshotHolder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s := h.cur.Load()
	if s == nil {
		http.Error(w, "no v3bw snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	hdr := w.Header()
	hdr["Etag"] = s.etag
	hdr["Last-Modified"] = s.lastModified
	if etagMatches(r.Header.Get("If-None-Match"), s.etag[0]) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	hdr["Content-Type"] = v3bwContentType
	hdr["Content-Length"] = s.contentLength
	if r.Method == http.MethodHead {
		return
	}
	w.Write(s.body)
}

// etagMatches reports whether the If-None-Match header value matches the
// strong ETag: "*", the exact tag, or any member of a comma-separated
// list (a weak "W/" prefix on a member still matches per RFC 9110 — weak
// comparison is allowed for If-None-Match).
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" || header == etag {
		return true
	}
	for len(header) > 0 {
		// Split on commas without strings.Split: revalidation storms hit
		// this for every request and must not allocate.
		i := 0
		for i < len(header) && header[i] != ',' {
			i++
		}
		part := trimSpaces(header[:i])
		if len(part) > 2 && part[0] == 'W' && part[1] == '/' {
			part = part[2:]
		}
		if part == etag {
			return true
		}
		if i == len(header) {
			break
		}
		header = header[i+1:]
	}
	return false
}

func trimSpaces(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}
