package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"flashflow/internal/coord"
	"flashflow/internal/dirauth"
	"flashflow/internal/metrics"
)

// Coordinator is the slice of *coord.Coordinator the server reads. Status
// must be safe to call concurrently with running rounds (coord's is).
type Coordinator interface {
	Status() coord.Status
}

// Merge is the slice of *dirauth.MergeService the server reads on a
// dirauth merge node. Status must be safe to call concurrently with
// submissions (the merge service's is).
type Merge interface {
	Status() dirauth.MergeStatus
}

// Config wires a Server to its data sources. Every field is optional:
// endpoints whose source is missing answer 404 (status) or 503 (v3bw),
// so a partial deployment — metrics only, say — still serves.
type Config struct {
	// Coordinator backs /status and /status/anomalies.
	Coordinator Coordinator
	// Counters backs /metrics.
	Counters *metrics.Counters
	// Snapshot backs /v3bw.
	Snapshot *SnapshotHolder
	// Merge backs /dirauth on a merge node (coordd -dirauth).
	Merge Merge
}

// Server is the embeddable observability HTTP server.
type Server struct {
	cfg Config
	enc metrics.PrometheusEncoder
	mux *http.ServeMux
	srv *http.Server
}

// NewServer builds the server and its routes.
func NewServer(cfg Config) *Server {
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /metrics", s.serveMetrics)
	s.mux.HandleFunc("GET /status", s.serveStatus)
	s.mux.HandleFunc("GET /status/anomalies", s.serveAnomalies)
	s.mux.HandleFunc("GET /dirauth", s.serveDirauth)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	if cfg.Snapshot != nil {
		s.mux.Handle("GET /v3bw", cfg.Snapshot)
		s.mux.Handle("HEAD /v3bw", cfg.Snapshot)
	} else {
		s.mux.HandleFunc("GET /v3bw", func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "v3bw serving not configured", http.StatusServiceUnavailable)
		})
	}
	return s
}

// Handler returns the route tree, for embedding in an existing server or
// an httptest harness.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr and serves in a background goroutine until
// Shutdown. It returns the bound address (useful with ":0" ports).
func (s *Server) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.srv = &http.Server{
		Handler: s.mux,
		// An observability scrape or directory fetch is small; generous
		// but bounded timeouts keep a stuck client from pinning a
		// connection through shutdown's drain budget.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go s.srv.Serve(l)
	return l.Addr(), nil
}

// Shutdown gracefully drains the server within the context's budget:
// in-flight responses finish, idle connections close, and new connects
// are refused. Safe to call when Start was never called.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// serveMetrics renders the Prometheus exposition: the counter registry
// plus the v3bw snapshot gauges (which live in the holder, not the
// registry, because snapshot age is an instantaneous derived value).
func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var gauges []metrics.Gauge
	if s.cfg.Snapshot != nil {
		if round, size, _, modTime, ok := s.cfg.Snapshot.Info(); ok {
			gauges = []metrics.Gauge{
				{Name: "flashflow_v3bw_snapshot_round", Help: "round of the served /v3bw snapshot", Value: float64(round)},
				{Name: "flashflow_v3bw_snapshot_bytes", Help: "size of the served /v3bw body", Value: float64(size)},
				{Name: "flashflow_v3bw_snapshot_age_seconds", Help: "seconds since the served /v3bw snapshot was published", Value: time.Since(modTime).Seconds()},
				{Name: "flashflow_v3bw_renders_total", Help: "bandwidth-file renders since start (one per published round)", Value: float64(s.cfg.Snapshot.Renders())},
			}
		}
	}
	s.enc.Encode(w, s.cfg.Counters, gauges)
}

// StatusDoc is the /status response shape: coord.Status plus a wall-clock
// stamp (coord.Status itself is time-free so it stays cheap to snapshot).
type StatusDoc struct {
	Time time.Time `json:"time"`
	coord.Status
}

func (s *Server) serveStatus(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Coordinator == nil {
		http.Error(w, "no coordinator attached", http.StatusNotFound)
		return
	}
	writeJSON(w, StatusDoc{Time: time.Now(), Status: s.cfg.Coordinator.Status()})
}

// MergeStatusDoc is the /dirauth response shape: the merge service's
// status plus a wall-clock stamp, mirroring /status.
type MergeStatusDoc struct {
	Time time.Time `json:"time"`
	dirauth.MergeStatus
}

func (s *Server) serveDirauth(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Merge == nil {
		http.Error(w, "no merge service attached", http.StatusNotFound)
		return
	}
	writeJSON(w, MergeStatusDoc{Time: time.Now(), MergeStatus: s.cfg.Merge.Status()})
}

func (s *Server) serveAnomalies(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Coordinator == nil {
		http.Error(w, "no coordinator attached", http.StatusNotFound)
		return
	}
	st := s.cfg.Coordinator.Status()
	doc := struct {
		Time  time.Time `json:"time"`
		Round int       `json:"round"`
		// Relays maps relay name to its windowed §5 anomaly counters;
		// encoding/json writes map keys sorted, so the document is
		// deterministic for a fixed table.
		Relays map[string]coreAnomaly `json:"relays"`
	}{Time: time.Now(), Round: st.Round, Relays: make(map[string]coreAnomaly, len(st.Anomalies))}
	for name, a := range st.Anomalies {
		doc.Relays[name] = coreAnomaly{
			ClampedSeconds:    a.ClampedSeconds,
			RatioClampedSlots: a.RatioClampedSlots,
			EchoFailures:      a.EchoFailures,
			StallSuspectSlots: a.StallSuspectSlots,
			SkewSuspectSlots:  a.SkewSuspectSlots,
			SplitViewRounds:   a.SplitViewRounds,
		}
	}
	writeJSON(w, doc)
}

// coreAnomaly mirrors core.AnomalyCounts with explicit snake_case JSON
// names: the HTTP document shape is API surface and must not drift if
// the internal struct is refactored.
type coreAnomaly struct {
	ClampedSeconds    int64 `json:"clamped_seconds"`
	RatioClampedSlots int64 `json:"ratio_clamped_slots"`
	EchoFailures      int64 `json:"echo_failures"`
	StallSuspectSlots int64 `json:"stall_suspect_slots"`
	SkewSuspectSlots  int64 `json:"skew_suspect_slots"`
	SplitViewRounds   int64 `json:"split_view_rounds"`
}

func writeJSON(w http.ResponseWriter, doc any) {
	w.Header()["Content-Type"] = jsonContentType
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// DebugHandler returns the pprof profiling mux (net/http/pprof routes
// under /debug/pprof/). coordd serves it on its own -debug-addr listener
// so profiling stays off the public observability port.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
