// Package obs is the HTTP observability plane for the long-lived
// FlashFlow service (§4.3, §7 deployment model): an embeddable server
// exposing the coordinator's operational state to scrapers, operators,
// and a Tor-scale directory-fetch population.
//
// Endpoints:
//
//	GET /metrics          Prometheus text exposition of the metrics.Counters
//	                      registry (byte-deterministic for a fixed state)
//	                      plus v3bw snapshot gauges
//	GET /status           JSON snapshot of coord.Status(): round, in-flight
//	                      slots, live per-slot progress, counters, last round
//	GET /status/anomalies JSON view of the windowed per-relay §5 anomaly table
//	GET /v3bw             the latest bandwidth-file snapshot, served from an
//	                      atomically swapped pre-rendered body with a strong
//	                      ETag and Last-Modified; If-None-Match revalidation
//	                      answers 304 without touching the render path
//	GET /healthz          liveness probe
//
// The serving rule that makes /v3bw scale: each round's snapshot is
// rendered exactly once (SnapshotHolder.Publish, fed by the coordinator's
// OnSnapshot hook) and every request — a million directory fetches per
// round, in the paper's deployment model — hits the cached body via one
// atomic pointer load, zero per-request allocations, zero locks. The
// debug profiling surface (net/http/pprof) is a separate handler so it
// can live on a loopback-only listener while the public endpoints face
// the network.
//
// Alerts (alerts.go) watch the same counters the §5 defenses feed —
// clamp activations, split-view detections, failed echo verification —
// and fire when a relay's windowed evidence crosses an operator
// threshold, turning the paper's security analysis into something a
// human gets paged for. OPERATIONS.md documents the endpoints and the
// recommended thresholds.
package obs
