package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"flashflow/internal/coord"
	"flashflow/internal/core"
	"flashflow/internal/metrics"
)

// The alerting pipeline turns the coordinator's windowed §5 anomaly
// counters into operator-visible alert records: a threshold evaluator
// runs once per round over the per-relay table, and crossings are
// delivered asynchronously to pluggable sinks (a log sink and a webhook
// sink ship in-tree). Delivery retries with the same exponential-backoff-
// plus-jitter machinery the coordinator's slot retry pipeline uses, so a
// briefly unreachable webhook receiver does not lose the alert and a hard-
// down one does not wedge the round loop — evaluation only ever enqueues.

// Alert is one structured alert record.
type Alert struct {
	Time time.Time `json:"time"`
	// Rule names the threshold that fired (e.g. "clamped_seconds").
	Rule string `json:"rule"`
	// Relay is the relay the evidence accumulated against ("" for
	// aggregate rules).
	Relay string `json:"relay,omitempty"`
	// Round is the coordinator round the evaluation ran after.
	Round int `json:"round"`
	// Value is the relay's accumulated count; Threshold is the configured
	// bound it crossed.
	Value     int64  `json:"value"`
	Threshold int64  `json:"threshold"`
	Message   string `json:"message"`
}

// Sink delivers alert records somewhere an operator looks. Deliver is
// called from the alert manager's delivery goroutine; returning an error
// triggers the manager's retry schedule.
type Sink interface {
	Deliver(ctx context.Context, a Alert) error
	// Name labels the sink in delivery-failure log lines and counters.
	Name() string
}

// LogSink writes one rendered alert per line. It never fails (short
// writes excepted), so it is the always-works baseline sink.
type LogSink struct {
	mu sync.Mutex
	W  io.Writer
	// JSON selects one-JSON-object-per-line rendering; false renders a
	// human-readable line.
	JSON bool
}

// Name implements Sink.
func (s *LogSink) Name() string { return "log" }

// Deliver implements Sink.
func (s *LogSink) Deliver(_ context.Context, a Alert) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.JSON {
		b, err := json.Marshal(struct {
			Event string `json:"event"`
			Alert
		}{Event: "alert", Alert: a})
		if err != nil {
			return err
		}
		b = append(b, '\n')
		_, err = s.W.Write(b)
		return err
	}
	_, err := fmt.Fprintf(s.W, "ALERT %s rule=%s relay=%s round=%d value=%d threshold=%d: %s\n",
		a.Time.UTC().Format(time.RFC3339), a.Rule, a.Relay, a.Round, a.Value, a.Threshold, a.Message)
	return err
}

// WebhookSink POSTs each alert as a JSON document to a fixed URL. Any
// response outside 2xx is a delivery failure (and the manager retries).
type WebhookSink struct {
	URL string
	// Client defaults to a dedicated client with a 5 s request timeout —
	// not http.DefaultClient, whose zero timeout would let one black-holed
	// receiver pin the delivery goroutine indefinitely.
	Client *http.Client
}

// Name implements Sink.
func (s *WebhookSink) Name() string { return "webhook" }

// Deliver implements Sink.
func (s *WebhookSink) Deliver(ctx context.Context, a Alert) error {
	body, err := json.Marshal(a)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.URL, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	client := s.Client
	if client == nil {
		client = webhookClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("obs: webhook %s: status %s", s.URL, resp.Status)
	}
	return nil
}

var webhookClient = &http.Client{Timeout: 5 * time.Second}

// AlertThresholds bounds each §5 anomaly counter per relay; a relay whose
// accumulated count reaches a bound fires that rule's alert. Zero
// disables a rule.
type AlertThresholds struct {
	ClampedSeconds    int64
	RatioClampedSlots int64
	EchoFailures      int64
	StallSuspectSlots int64
	SkewSuspectSlots  int64
	SplitViewRounds   int64
}

// DefaultThresholds returns the stock rule set: a single echo-verification
// catch or split-view round is already strong evidence and alerts
// immediately; clamp evidence accumulates with honest saturation too, so
// its bound is higher.
func DefaultThresholds() AlertThresholds {
	return AlertThresholds{
		ClampedSeconds:    30,
		RatioClampedSlots: 2,
		EchoFailures:      1,
		StallSuspectSlots: 4,
		SkewSuspectSlots:  4,
		SplitViewRounds:   1,
	}
}

// AlertConfig tunes an AlertManager.
type AlertConfig struct {
	Thresholds AlertThresholds
	Sinks      []Sink
	// RetryBase/RetryMax/MaxAttempts shape per-sink delivery retries
	// (defaults 200 ms, 5 s, 5 attempts).
	RetryBase, RetryMax time.Duration
	MaxAttempts         int
	// QueueSize bounds undelivered alerts (default 256); beyond it new
	// alerts are counted as dropped rather than blocking the round loop.
	QueueSize int
	// Counters receives the obs_alert_* operational counters (optional).
	Counters *metrics.Counters
	// Seed drives the retry jitter stream (default 1).
	Seed int64
}

func (cfg AlertConfig) withDefaults() AlertConfig {
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 200 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 5 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.Counters == nil {
		cfg.Counters = metrics.NewCounters()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// AlertManager evaluates thresholds and owns asynchronous delivery.
// Evaluate and Fire never block on sinks; Flush drains pending deliveries
// within a caller-supplied budget (coordd gives it the ~1 s drain window
// at shutdown); Close cancels whatever delivery work remains.
type AlertManager struct {
	cfg     AlertConfig
	backoff *coord.Backoff
	queue   chan Alert
	pending sync.WaitGroup

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	lastFired map[string]int64
}

// NewAlertManager creates the manager and starts its delivery goroutine.
func NewAlertManager(cfg AlertConfig) *AlertManager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &AlertManager{
		cfg:       cfg,
		backoff:   coord.NewBackoff(cfg.RetryBase, cfg.RetryMax, cfg.Seed),
		queue:     make(chan Alert, cfg.QueueSize),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		lastFired: make(map[string]int64),
	}
	for _, name := range []string{
		"obs_alerts_fired", "obs_alerts_delivered", "obs_alert_retries",
		"obs_alert_failures", "obs_alerts_dropped",
	} {
		cfg.Counters.Add(name, 0)
	}
	go m.deliverLoop()
	return m
}

// rule pairs a threshold with the anomaly field it bounds.
type rule struct {
	name      string
	threshold func(AlertThresholds) int64
	value     func(core.AnomalyCounts) int64
	message   string
}

var alertRules = []rule{
	{"clamped_seconds", func(t AlertThresholds) int64 { return t.ClampedSeconds },
		func(a core.AnomalyCounts) int64 { return a.ClampedSeconds },
		"per-second r-ratio clamp fired repeatedly (inflation-attack signature, §4.1)"},
	{"ratio_clamped_slots", func(t AlertThresholds) int64 { return t.RatioClampedSlots },
		func(a core.AnomalyCounts) int64 { return a.RatioClampedSlots },
		"estimate-level 1/(1-r) invariant clamp fired (inconsistent accounting, §5)"},
	{"echo_failures", func(t AlertThresholds) int64 { return t.EchoFailures },
		func(a core.AnomalyCounts) int64 { return a.EchoFailures },
		"probabilistic echo verification caught forged cells (§4.1)"},
	{"stall_slots", func(t AlertThresholds) int64 { return t.StallSuspectSlots },
		func(a core.AnomalyCounts) int64 { return a.StallSuspectSlots },
		"rejected attempts tracked the acceptance bound (slot-stalling pattern, §5)"},
	{"skew_slots", func(t AlertThresholds) int64 { return t.SkewSuspectSlots },
		func(a core.AnomalyCounts) int64 { return a.SkewSuspectSlots },
		"a measurer's received share diverged from its allocation share (selective echo, §5)"},
	{"split_view_rounds", func(t AlertThresholds) int64 { return t.SplitViewRounds },
		func(a core.AnomalyCounts) int64 { return a.SplitViewRounds },
		"relay showed different BWAuths different capacities (selective lying, §5)"},
}

// Evaluate runs every rule over the windowed per-relay anomaly table and
// fires alerts for new crossings. A rule re-fires for a relay only when
// the relay's count has grown past its value at the previous alert, so a
// steady table does not re-alert every round, while fresh evidence does.
// Relays are visited in sorted order so the emitted alert sequence is
// deterministic for a fixed table.
func (m *AlertManager) Evaluate(round int, anomalies map[string]core.AnomalyCounts, now time.Time) {
	if len(anomalies) == 0 {
		return
	}
	relays := make([]string, 0, len(anomalies))
	for name := range anomalies {
		relays = append(relays, name)
	}
	sort.Strings(relays)
	for _, relay := range relays {
		counts := anomalies[relay]
		for _, r := range alertRules {
			threshold := r.threshold(m.cfg.Thresholds)
			if threshold <= 0 {
				continue
			}
			value := r.value(counts)
			if value < threshold {
				continue
			}
			key := relay + "\x00" + r.name
			m.mu.Lock()
			last, seen := m.lastFired[key]
			if seen && value <= last {
				m.mu.Unlock()
				continue
			}
			m.lastFired[key] = value
			m.mu.Unlock()
			m.Fire(Alert{
				Time:      now,
				Rule:      r.name,
				Relay:     relay,
				Round:     round,
				Value:     value,
				Threshold: threshold,
				Message:   r.message,
			})
		}
	}
}

// Retain drops per-relay refire state for relays outside keep, mirroring
// the coordinator's anomaly-window retention so the map cannot grow for
// the life of the service.
func (m *AlertManager) Retain(keep map[string]core.AnomalyCounts) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for key := range m.lastFired {
		relay := key
		if i := indexByte(key, '\x00'); i >= 0 {
			relay = key[:i]
		}
		if _, ok := keep[relay]; !ok {
			delete(m.lastFired, key)
		}
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Fire enqueues one alert for asynchronous delivery. When the queue is
// full the alert is dropped (and counted) instead of blocking the caller:
// the round loop must never wait on a slow webhook.
func (m *AlertManager) Fire(a Alert) {
	m.cfg.Counters.Inc("obs_alerts_fired")
	m.pending.Add(1)
	select {
	case m.queue <- a:
	default:
		m.pending.Done()
		m.cfg.Counters.Inc("obs_alerts_dropped")
	}
}

// deliverLoop drains the queue, delivering each alert to every sink with
// per-sink retries.
func (m *AlertManager) deliverLoop() {
	defer close(m.done)
	for {
		select {
		case <-m.ctx.Done():
			// Drain what remains so pending never leaks; deliveries get
			// one cancellation-aware attempt each (sinks that ignore ctx,
			// like LogSink, still flush).
			for {
				select {
				case a := <-m.queue:
					m.deliver(a)
					m.pending.Done()
				default:
					return
				}
			}
		case a := <-m.queue:
			m.deliver(a)
			m.pending.Done()
		}
	}
}

// deliver pushes one alert to every sink, retrying each failed sink on
// the backoff schedule until it succeeds, attempts run out, or the
// manager is closed.
func (m *AlertManager) deliver(a Alert) {
	for _, sink := range m.cfg.Sinks {
		var err error
		for attempt := 1; attempt <= m.cfg.MaxAttempts; attempt++ {
			if err = sink.Deliver(m.ctx, a); err == nil {
				m.cfg.Counters.Inc("obs_alerts_delivered")
				break
			}
			if m.ctx.Err() != nil || attempt == m.cfg.MaxAttempts {
				break
			}
			m.cfg.Counters.Inc("obs_alert_retries")
			t := time.NewTimer(m.backoff.Next(attempt))
			select {
			case <-m.ctx.Done():
				t.Stop()
			case <-t.C:
			}
		}
		if err != nil {
			m.cfg.Counters.Inc("obs_alert_failures")
		}
	}
}

// Flush blocks until every fired alert has finished delivery (delivered,
// exhausted its retries, or been dropped) or the context expires.
func (m *AlertManager) Flush(ctx context.Context) error {
	settled := make(chan struct{})
	go func() {
		m.pending.Wait()
		close(settled)
	}()
	select {
	case <-settled:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("obs: alert flush: %w", ctx.Err())
	}
}

// Close cancels in-flight delivery work and stops the delivery goroutine.
// Call Flush first to give pending deliveries their budget.
func (m *AlertManager) Close() {
	m.cancel()
	<-m.done
}
