package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"flashflow/internal/coord"
	"flashflow/internal/core"
	"flashflow/internal/dirauth"
	"flashflow/internal/metrics"
	"flashflow/internal/relay"
)

// testHarness is a coordinator over a deterministic simulated backend
// wired to the full observability plane, the way cmd/coordd assembles it.
type testHarness struct {
	coord    *coord.Coordinator
	counters *metrics.Counters
	holder   *SnapshotHolder
}

func newHarness(t *testing.T, rounds int) *testHarness {
	t.Helper()
	p := core.DefaultParams()
	p.SlotSeconds = 2

	backend := core.NewSimBackend([]core.PathModel{
		{RTT: 40 * time.Millisecond, LinkBps: 1e9},
		{RTT: 60 * time.Millisecond, LinkBps: 1e9},
	}, 1)
	var source coord.StaticRelays
	for i, capBps := range []float64{20e6, 35e6, 50e6} {
		name := fmt.Sprintf("relay%d", i)
		backend.AddTarget(name, &core.SimTarget{
			Relay:    relay.New(relay.Config{Name: name, TorCapBps: capBps}),
			LinkBps:  1e9,
			Behavior: core.BehaviorHonest,
		})
		source = append(source, core.RelayEstimate{Name: name, EstimateBps: capBps})
	}
	team := []*core.Measurer{
		{Name: "m1", CapacityBps: 1e9, Cores: 4},
		{Name: "m2", CapacityBps: 1e9, Cores: 4},
	}
	auths := []*core.BWAuth{core.NewBWAuth("bw0", team, backend, p)}

	h := &testHarness{counters: metrics.NewCounters(), holder: &SnapshotHolder{}}
	c, err := coord.New(coord.Config{
		Params:      p,
		Workers:     2,
		MaxAttempts: 2,
		RetryBase:   time.Millisecond,
		RetryMax:    2 * time.Millisecond,
		MaxRounds:   rounds,
		Counters:    h.counters,
		OnSnapshot: func(round int, f *dirauth.BandwidthFile) {
			if err := h.holder.Publish(round, f, time.Now()); err != nil {
				t.Errorf("publish round %d: %v", round, err)
			}
		},
	}, auths, source)
	if err != nil {
		t.Fatal(err)
	}
	h.coord = c
	return h
}

func (h *testHarness) server() *Server {
	return NewServer(Config{Coordinator: h.coord, Counters: h.counters, Snapshot: h.holder})
}

func get(t *testing.T, ts *httptest.Server, path string, header http.Header) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestServerEndToEnd drives two coordinator rounds on the simulated
// backend, then exercises every endpoint the way a scraper and a
// directory-fetch client would — including the 200 → 304 ETag
// revalidation flow that lets a million fetchers skip the body.
func TestServerEndToEnd(t *testing.T) {
	h := newHarness(t, 2)
	if err := h.coord.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h.server().Handler())
	defer ts.Close()

	// /metrics: Prometheus text format, counter registry with the §5
	// anomaly counters present (at zero — the population is honest), plus
	// the snapshot gauges.
	resp, body := get(t, ts, "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"flashflow_coord_rounds_completed 2\n",
		"flashflow_coord_round 2\n",
		"flashflow_coord_relays_measured 3\n",
		"flashflow_coord_anomaly_echo_failures 0\n",
		"flashflow_coord_anomaly_split_view_rounds 0\n",
		"flashflow_coord_slot_seconds_saved ",
		"flashflow_v3bw_snapshot_round 2\n",
		"flashflow_v3bw_renders_total 2\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Split(line, " "); len(parts) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// /status: JSON with the final round and counter map.
	resp, body = get(t, ts, "/status", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/status: %d", resp.StatusCode)
	}
	var status struct {
		Time     time.Time        `json:"time"`
		Round    int              `json:"round"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/status parse: %v\n%s", err, body)
	}
	if status.Round != 2 || status.Time.IsZero() {
		t.Fatalf("/status round=%d time=%v", status.Round, status.Time)
	}
	if status.Counters["coord_rounds_completed"] != 2 {
		t.Fatalf("/status counters: %v", status.Counters)
	}

	// /status/anomalies: well-formed JSON table (empty — honest relays).
	resp, body = get(t, ts, "/status/anomalies", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/status/anomalies: %d", resp.StatusCode)
	}
	var anomalies struct {
		Round  int                        `json:"round"`
		Relays map[string]json.RawMessage `json:"relays"`
	}
	if err := json.Unmarshal([]byte(body), &anomalies); err != nil {
		t.Fatalf("/status/anomalies parse: %v\n%s", err, body)
	}
	if anomalies.Round != 2 {
		t.Fatalf("/status/anomalies round %d", anomalies.Round)
	}

	// /v3bw: parseable bandwidth file with every relay, then conditional
	// revalidation. A fresh GET must not re-render.
	rendersBefore := h.holder.Renders()
	resp, body = get(t, ts, "/v3bw", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v3bw: %d", resp.StatusCode)
	}
	etag := resp.Header.Get("Etag")
	if etag == "" || resp.Header.Get("Last-Modified") == "" {
		t.Fatalf("/v3bw missing validators: %+v", resp.Header)
	}
	parsed, err := dirauth.ParseV3BW(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/v3bw body does not parse: %v\n%s", err, body)
	}
	if len(parsed.Entries) != 3 {
		t.Fatalf("/v3bw entries: %d", len(parsed.Entries))
	}

	resp, body = get(t, ts, "/v3bw", http.Header{"If-None-Match": {etag}})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation: got %d, want 304", resp.StatusCode)
	}
	if body != "" {
		t.Fatalf("304 carried %d body bytes", len(body))
	}
	resp, _ = get(t, ts, "/v3bw", http.Header{"If-None-Match": {`"stale"`}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale validator: got %d, want 200", resp.StatusCode)
	}
	if got := h.holder.Renders(); got != rendersBefore {
		t.Fatalf("serving re-rendered: %d -> %d", rendersBefore, got)
	}

	// /healthz.
	if resp, _ = get(t, ts, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}
}

// TestServerConcurrentWithRounds hammers every endpoint while the
// coordinator is actively running rounds — the race detector checks that
// Status(), the anomaly table, the counter registry, and the snapshot
// swap are all safe against live measurement traffic.
func TestServerConcurrentWithRounds(t *testing.T) {
	h := newHarness(t, 6)
	ts := httptest.NewServer(h.server().Handler())
	defer ts.Close()

	done := make(chan error, 1)
	go func() { done <- h.coord.Run(context.Background()) }()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	paths := []string{"/metrics", "/status", "/status/anomalies", "/v3bw", "/healthz"}
	for _, path := range paths {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := ts.Client().Get(ts.URL + path)
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// 503 is legal for /v3bw before the first publication;
				// nothing else may fail.
				if resp.StatusCode != http.StatusOK &&
					!(path == "/v3bw" && resp.StatusCode == http.StatusServiceUnavailable) {
					t.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}
	if err := <-done; err != nil {
		t.Error(err)
	}
	close(stop)
	wg.Wait()

	if got := h.coord.Status().Round; got != 6 {
		t.Fatalf("rounds completed: %d", got)
	}
}

// TestServerStartShutdown exercises the real listener path coordd uses:
// bind :0, serve one scrape, then drain within a budget.
func TestServerStartShutdown(t *testing.T) {
	h := newHarness(t, 1)
	if err := h.coord.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := h.server()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics over real listener: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr.String() + "/metrics"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}

	// Shutdown on a server that never started is a no-op.
	if err := NewServer(Config{}).Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
