package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/metrics"
)

// captureSink records every delivered alert.
type captureSink struct {
	mu     sync.Mutex
	alerts []Alert
}

func (s *captureSink) Name() string { return "capture" }

func (s *captureSink) Deliver(_ context.Context, a Alert) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alerts = append(s.alerts, a)
	return nil
}

func (s *captureSink) rules() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.alerts))
	for i, a := range s.alerts {
		out[i] = a.Relay + "/" + a.Rule
	}
	return out
}

func flush(t *testing.T, m *AlertManager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestEvaluateThresholdsAndDedupe pins the evaluator contract: a crossing
// fires once, a steady table does not re-alert, and fresh growth past the
// previous alert does.
func TestEvaluateThresholdsAndDedupe(t *testing.T) {
	sink := &captureSink{}
	m := NewAlertManager(AlertConfig{
		Thresholds: DefaultThresholds(),
		Sinks:      []Sink{sink},
	})
	defer m.Close()

	table := map[string]core.AnomalyCounts{
		"liar":   {EchoFailures: 1, ClampedSeconds: 45},
		"honest": {},
		"mild":   {ClampedSeconds: 29}, // below the 30-second bound
	}
	now := time.Unix(1700000000, 0)
	m.Evaluate(1, table, now)
	flush(t, m)
	if got := sink.rules(); len(got) != 2 ||
		got[0] != "liar/clamped_seconds" || got[1] != "liar/echo_failures" {
		t.Fatalf("round 1 alerts: %v", got)
	}

	// Same table again: nothing new fires.
	m.Evaluate(2, table, now)
	flush(t, m)
	if got := sink.rules(); len(got) != 2 {
		t.Fatalf("steady table re-alerted: %v", got)
	}

	// Evidence grows: the grown rule re-fires, the steady one stays quiet.
	table["liar"] = core.AnomalyCounts{EchoFailures: 1, ClampedSeconds: 90}
	m.Evaluate(3, table, now)
	flush(t, m)
	got := sink.rules()
	if len(got) != 3 || got[2] != "liar/clamped_seconds" {
		t.Fatalf("grown evidence alerts: %v", got)
	}
	last := sink.alerts[2]
	if last.Value != 90 || last.Threshold != 30 || last.Round != 3 {
		t.Fatalf("alert fields: %+v", last)
	}

	// A disabled rule (threshold 0) never fires.
	off := DefaultThresholds()
	off.EchoFailures = 0
	m2 := NewAlertManager(AlertConfig{Thresholds: off, Sinks: []Sink{sink}})
	defer m2.Close()
	m2.Evaluate(1, map[string]core.AnomalyCounts{"x": {EchoFailures: 99}}, now)
	flush(t, m2)
	if got := sink.rules(); len(got) != 3 {
		t.Fatalf("disabled rule fired: %v", got)
	}
}

// TestRetainPrunesRefireState mirrors the coordinator's anomaly-window
// retention: a relay dropped from the table can alert again when it
// returns, and the state map does not grow unboundedly.
func TestRetainPrunesRefireState(t *testing.T) {
	sink := &captureSink{}
	m := NewAlertManager(AlertConfig{Thresholds: DefaultThresholds(), Sinks: []Sink{sink}})
	defer m.Close()
	now := time.Unix(1700000000, 0)

	table := map[string]core.AnomalyCounts{"liar": {EchoFailures: 2}}
	m.Evaluate(1, table, now)
	// The window forgets the relay, then it reappears with the same count:
	// that is fresh evidence post-expiry and must alert again.
	m.Retain(map[string]core.AnomalyCounts{})
	m.Evaluate(5, table, now)
	flush(t, m)
	if got := sink.rules(); len(got) != 2 {
		t.Fatalf("post-retention alerts: %v", got)
	}
}

// TestWebhookSinkRetries points the manager at a webhook that fails twice
// before accepting: the alert must arrive exactly once downstream, with
// the retry counters recording the journey.
func TestWebhookSinkRetries(t *testing.T) {
	var mu sync.Mutex
	var requests int
	var delivered []Alert
	ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		requests++
		if requests <= 2 {
			http.Error(w, "flaky", http.StatusBadGateway)
			return
		}
		var a Alert
		if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
			t.Errorf("webhook body: %v", err)
		}
		delivered = append(delivered, a)
	}))
	defer ws.Close()

	counters := metrics.NewCounters()
	m := NewAlertManager(AlertConfig{
		Thresholds: DefaultThresholds(),
		Sinks:      []Sink{&WebhookSink{URL: ws.URL, Client: ws.Client()}},
		RetryBase:  time.Millisecond,
		RetryMax:   4 * time.Millisecond,
		Counters:   counters,
	})
	defer m.Close()

	m.Evaluate(1, map[string]core.AnomalyCounts{"liar": {SplitViewRounds: 1}}, time.Now())
	flush(t, m)

	mu.Lock()
	defer mu.Unlock()
	if requests != 3 || len(delivered) != 1 {
		t.Fatalf("webhook saw %d requests, %d deliveries", requests, len(delivered))
	}
	if delivered[0].Rule != "split_view_rounds" || delivered[0].Relay != "liar" {
		t.Fatalf("delivered alert: %+v", delivered[0])
	}
	if counters.Get("obs_alert_retries") != 2 || counters.Get("obs_alerts_delivered") != 1 {
		t.Fatalf("counters: %s", counters.String())
	}
}

// TestQueueFullDropsNotBlocks: with delivery wedged, firing past the
// queue bound must return immediately and count drops — the round loop
// never waits on a sink.
func TestQueueFullDropsNotBlocks(t *testing.T) {
	release := make(chan struct{})
	counters := metrics.NewCounters()
	m := NewAlertManager(AlertConfig{
		Thresholds: DefaultThresholds(),
		Sinks: []Sink{sinkFunc(func(ctx context.Context, _ Alert) error {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return nil
		})},
		QueueSize: 2,
		Counters:  counters,
	})

	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			m.Fire(Alert{Rule: "echo_failures", Relay: "r", Value: int64(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Fire blocked on a wedged sink")
	}
	close(release)
	flush(t, m)
	m.Close()

	fired := counters.Get("obs_alerts_fired")
	dropped := counters.Get("obs_alerts_dropped")
	delivered := counters.Get("obs_alerts_delivered")
	if fired != 10 || dropped == 0 || delivered+dropped != fired {
		t.Fatalf("fired=%d delivered=%d dropped=%d", fired, delivered, dropped)
	}
}

// TestFlushHonorsBudget: a sink that outlives the drain budget makes
// Flush return the deadline error instead of hanging shutdown; Close then
// cancels the in-flight delivery.
func TestFlushHonorsBudget(t *testing.T) {
	m := NewAlertManager(AlertConfig{
		Thresholds: DefaultThresholds(),
		Sinks: []Sink{sinkFunc(func(ctx context.Context, _ Alert) error {
			<-ctx.Done()
			return ctx.Err()
		})},
	})
	m.Fire(Alert{Rule: "echo_failures", Relay: "r"})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Flush(ctx); err == nil {
		t.Fatal("Flush returned nil despite a wedged sink")
	}
	start := time.Now()
	m.Close()
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("Close took %v", waited)
	}
}

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(context.Context, Alert) error

func (f sinkFunc) Deliver(ctx context.Context, a Alert) error { return f(ctx, a) }

func (f sinkFunc) Name() string { return "func" }

// TestLogSinkFormats checks both renderings: the JSON line a log pipeline
// ingests and the human line.
func TestLogSinkFormats(t *testing.T) {
	a := Alert{
		Time: time.Unix(1700000000, 0).UTC(), Rule: "echo_failures",
		Relay: "liar", Round: 3, Value: 2, Threshold: 1, Message: "caught",
	}
	var buf bytes.Buffer
	if err := (&LogSink{W: &buf, JSON: true}).Deliver(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON line: %v (%q)", err, buf.String())
	}
	if doc["event"] != "alert" || doc["rule"] != "echo_failures" || doc["relay"] != "liar" {
		t.Fatalf("JSON doc: %v", doc)
	}

	buf.Reset()
	if err := (&LogSink{W: &buf}).Deliver(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.HasPrefix(line, "ALERT ") || !strings.Contains(line, "relay=liar") {
		t.Fatalf("human line: %q", line)
	}
}
