// Package integration holds cross-package end-to-end tests. This file
// proves the distributed control plane's core equivalence claim: three
// bwauthd-style processes (each one coordinator column submitting signed
// views over the authenticated RPC) produce, through the dirauth merge
// service, a bandwidth file byte-identical to what a single-process
// coordinator running the same three BWAuths over the same population
// publishes. The transport is net.Pipe so the test exercises the real
// frame/handshake/submission path without sockets or sleeps.
package integration

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"flashflow/internal/coord"
	"flashflow/internal/core"
	"flashflow/internal/dirauth"
	"flashflow/internal/relay"
	"flashflow/internal/rpc"
	"flashflow/internal/wire"
)

const (
	relayCount = 4
	measurers  = 2
	baseMbit   = 8.0
)

// population builds one BWAuth's deterministic sim column: zero-sigma
// paths consume no randomness, so every coordinator sees identical slot
// results for the same relay regardless of scheduling interleave — the
// property the byte-equality assertions below depend on.
func population(name string) (*core.BWAuth, coord.StaticRelays, core.Params) {
	p := core.DefaultParams()
	p.CheckProb = 0
	paths := make([]core.PathModel, measurers)
	for i := range paths {
		paths[i] = core.PathModel{RTT: 40 * time.Millisecond, LinkBps: 1e9}
	}
	backend := core.NewSimBackend(paths, 1)
	team := make([]*core.Measurer, measurers)
	for i := range team {
		team[i] = &core.Measurer{Name: fmt.Sprintf("m%d", i), CapacityBps: 500e6, Cores: 2}
	}
	var source coord.StaticRelays
	for i := 0; i < relayCount; i++ {
		rname := fmt.Sprintf("relay%02d", i)
		rate := baseMbit * 1e6 * (1 + 0.5*float64(i))
		backend.AddTarget(rname, &core.SimTarget{
			Relay:    relay.New(relay.Config{Name: rname, TorCapBps: rate}),
			LinkBps:  2e9,
			Behavior: core.BehaviorHonest,
		})
		source = append(source, core.RelayEstimate{Name: rname, EstimateBps: rate})
	}
	return core.NewBWAuth(name, team, backend, p), source, p
}

// runColumn measures one round with a single-BWAuth coordinator and
// returns the published view.
func runColumn(t *testing.T, name string) *dirauth.BandwidthFile {
	t.Helper()
	auth, source, p := population(name)
	var view *dirauth.BandwidthFile
	c, err := coord.New(coord.Config{
		Params:      p,
		Workers:     4,
		MaxAttempts: 1,
		MaxRounds:   1,
		OnSnapshot:  func(_ int, f *dirauth.BandwidthFile) { view = f },
	}, []*core.BWAuth{auth}, source)
	if err != nil {
		t.Fatalf("coord.New(%s): %v", name, err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	if view == nil {
		t.Fatalf("%s published no snapshot", name)
	}
	return view
}

func render(t *testing.T, f *dirauth.BandwidthFile) []byte {
	t.Helper()
	body, _, err := f.Render()
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	return body
}

// TestDistributedMergeMatchesSingleProcess is the ISSUE's acceptance
// check in miniature: three independent one-BWAuth coordinators submit
// signed views through the real RPC server into a merge service, and the
// merged body must equal byte-for-byte both the direct MergeMedianFile
// of the views and the snapshot a single three-BWAuth coordinator
// publishes for the same population.
func TestDistributedMergeMatchesSingleProcess(t *testing.T) {
	names := []string{"bw0", "bw1", "bw2"}

	// Single-process baseline: one coordinator, three BWAuth columns over
	// identical copies of the population.
	var auths []*core.BWAuth
	var source coord.StaticRelays
	var p core.Params
	for _, n := range names {
		a, s, pp := population(n)
		auths, source, p = append(auths, a), s, pp
	}
	var singleBody []byte
	c, err := coord.New(coord.Config{
		Params:      p,
		Workers:     4,
		MaxAttempts: 1,
		MaxRounds:   1,
		OnSnapshot:  func(_ int, f *dirauth.BandwidthFile) { singleBody = render(t, f) },
	}, auths, source)
	if err != nil {
		t.Fatalf("coord.New single-process: %v", err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatalf("single-process run: %v", err)
	}
	if singleBody == nil {
		t.Fatal("single-process coordinator published no snapshot")
	}

	// Distributed: a merge node wired like coordd -dirauth — but with the
	// single-process producer name so outputs compare byte-for-byte — fed
	// over net.Pipe by authenticated RPC clients.
	ids := make(map[string]wire.Identity, len(names))
	keys := make(map[string]ed25519.PublicKey, len(names))
	authorized := make([]ed25519.PublicKey, 0, len(names))
	for _, n := range names {
		id := rpc.DeriveIdentity("it-secret", n)
		ids[n] = id
		keys[n] = id.Pub
		authorized = append(authorized, id.Pub)
	}

	var merged *dirauth.Merged
	svc, err := dirauth.NewMergeService(dirauth.MergeConfig{
		Keys:     keys,
		FreshFor: time.Hour,
		MinViews: len(names),
		Producer: "coord",
		OnMerge:  func(m dirauth.Merged) { merged = &m },
	})
	if err != nil {
		t.Fatalf("merge service: %v", err)
	}
	srv, err := rpc.NewServer(rpc.ServerConfig{
		Authorized: authorized,
		Handler: func(_ ed25519.PublicKey, method uint8, body []byte) ([]byte, error) {
			if method != rpc.MethodSubmitV3BW {
				return nil, fmt.Errorf("unknown method %d", method)
			}
			sub, err := dirauth.DecodeSubmission(body)
			if err != nil {
				return nil, err
			}
			if _, err := svc.Submit(sub); err != nil {
				return nil, err
			}
			return []byte("ok"), nil
		},
	})
	if err != nil {
		t.Fatalf("rpc server: %v", err)
	}
	defer srv.Close()

	views := make([]*dirauth.BandwidthFile, 0, len(names))
	for _, n := range names {
		view := runColumn(t, n)
		views = append(views, view)
		sub := &dirauth.Submission{
			BWAuth:  n,
			Round:   1,
			Version: dirauth.SubmissionVersionMax,
			Body:    render(t, view),
		}
		sub.Sign(ids[n].Priv)
		cli, err := rpc.NewClient(rpc.ClientConfig{
			Dial: func(context.Context) (io.ReadWriteCloser, error) {
				a, b := net.Pipe()
				go srv.ServeConn(b)
				return a, nil
			},
			Identity: ids[n],
		})
		if err != nil {
			t.Fatalf("client %s: %v", n, err)
		}
		if _, err := cli.Call(context.Background(), rpc.MethodSubmitV3BW, sub.Encode()); err != nil {
			t.Fatalf("submit %s: %v", n, err)
		}
		cli.Close()
	}
	if merged == nil {
		t.Fatal("merge service never merged despite all views submitted")
	}

	// Equivalence 1: the service's merge is the direct median-of-views.
	directBody := render(t, dirauth.MergeMedianFile("coord", views[0].At, views))
	if !bytes.Equal(merged.Body, directBody) {
		t.Errorf("service merge differs from direct MergeMedianFile:\n--- service\n%s--- direct\n%s", merged.Body, directBody)
	}

	// Equivalence 2: the distributed pipeline reproduces the
	// single-process coordinator's published snapshot byte-for-byte.
	if !bytes.Equal(merged.Body, singleBody) {
		t.Errorf("distributed merge differs from single-process snapshot:\n--- distributed\n%s--- single\n%s", merged.Body, singleBody)
	}
}
