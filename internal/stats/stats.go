// Package stats provides the small statistical toolkit used throughout the
// FlashFlow reproduction: medians, percentiles, CDFs, relative standard
// deviation (Eq. 7 of the paper), boxplot summaries matching the paper's
// plotting conventions, and the binomial tail used in the security analysis
// (§5).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by summary functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Median returns the median of xs. It copies xs and so does not disturb the
// caller's ordering. It returns 0 for an empty slice; callers that must
// distinguish use MedianErr.
func Median(xs []float64) float64 {
	m, err := MedianErr(xs)
	if err != nil {
		return 0
	}
	return m
}

// MedianErr returns the median of xs, or ErrEmpty.
func MedianErr(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stdev returns the population standard deviation of xs.
func Stdev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// RSD computes the relative standard deviation stdev(V)/mean(V) (paper Eq. 7).
// It returns 0 when the mean is zero to avoid dividing by zero for idle
// relays.
func RSD(xs []float64) float64 {
	mu := Mean(xs)
	if mu == 0 {
		return 0
	}
	return Stdev(xs) / mu
}

// Percentile returns the q-th percentile (q in [0,100]) of xs using linear
// interpolation between closest ranks, matching numpy's default method used
// by the paper's analysis scripts.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, q)
}

func percentileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 100 {
		return s[len(s)-1]
	}
	pos := q / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Min returns the minimum of xs, or 0 if empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 if empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// CDF is an empirical cumulative distribution function over a sample set.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples backing the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns the cumulative fraction of samples ≤ x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the value below which fraction q (in [0,1]) of the
// samples fall.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return percentileSorted(c.sorted, q*100)
}

// Points returns up to n evenly spaced (value, cumulative fraction) points,
// suitable for rendering the CDF as a plot series.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(n-1, 1)
		pts = append(pts, [2]float64{c.sorted[idx], float64(idx+1) / float64(len(c.sorted))})
	}
	return pts
}

// Boxplot summarizes a sample the way the paper's figures do: median, mean,
// interquartile range, and whiskers at the 5th and 95th percentiles.
type Boxplot struct {
	Median float64
	Mean   float64
	Q1     float64
	Q3     float64
	P5     float64
	P95    float64
	N      int
}

// NewBoxplot computes the boxplot summary of xs.
func NewBoxplot(xs []float64) Boxplot {
	if len(xs) == 0 {
		return Boxplot{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Boxplot{
		Median: percentileSorted(s, 50),
		Mean:   Mean(s),
		Q1:     percentileSorted(s, 25),
		Q3:     percentileSorted(s, 75),
		P5:     percentileSorted(s, 5),
		P95:    percentileSorted(s, 95),
		N:      len(s),
	}
}

// BinomialTail returns Pr[B(n, p) >= k] for a binomially distributed B.
// The paper's §5 uses it to bound the success probability of a relay that
// provides high capacity during only a fraction q of measurement slots:
// with n BWAuths the attack succeeds with probability Pr[B(n, q) >= n/2].
func BinomialTail(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	var total float64
	for i := k; i <= n; i++ {
		total += binomPMF(n, p, i)
	}
	if total > 1 {
		total = 1
	}
	return total
}

func binomPMF(n int, p float64, k int) float64 {
	if p < 0 || p > 1 {
		return 0
	}
	// Work in log space for numerical stability at large n.
	lp := logChoose(n, k)
	if p > 0 {
		lp += float64(k) * math.Log(p)
	} else if k > 0 {
		return 0
	}
	if p < 1 {
		lp += float64(n-k) * math.Log(1-p)
	} else if n-k > 0 {
		return 0
	}
	return math.Exp(lp)
}

func logChoose(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// TotalVariationDistance returns half the L1 distance between two discrete
// distributions given as aligned slices. It is the network weight error
// metric of paper Eq. 6 when a and b are normalized weights and capacities.
func TotalVariationDistance(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += math.Abs(a[i] - b[i])
	}
	// Any unmatched tail counts fully toward the distance.
	for i := n; i < len(a); i++ {
		s += math.Abs(a[i])
	}
	for i := n; i < len(b); i++ {
		s += math.Abs(b[i])
	}
	return s / 2
}

// Normalize returns xs scaled to sum to 1. An all-zero or empty input
// returns a copy unchanged.
func Normalize(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	total := Sum(out)
	if total == 0 {
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
