package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMedianOdd(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median odd: got %v want 2", got)
	}
}

func TestMedianEven(t *testing.T) {
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("median even: got %v want 2.5", got)
	}
}

func TestMedianEmpty(t *testing.T) {
	if got := Median(nil); got != 0 {
		t.Fatalf("median empty: got %v want 0", got)
	}
	if _, err := MedianErr(nil); err != ErrEmpty {
		t.Fatalf("MedianErr empty: want ErrEmpty, got %v", err)
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	in := []float64{5, 1, 4}
	Median(in)
	if in[0] != 5 || in[1] != 1 || in[2] != 4 {
		t.Fatalf("median mutated input: %v", in)
	}
}

func TestMeanAndStdev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean: got %v want 5", got)
	}
	if got := Stdev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("stdev: got %v want 2", got)
	}
}

func TestRSD(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := RSD(xs); !almostEqual(got, 0.4, 1e-12) {
		t.Fatalf("rsd: got %v want 0.4", got)
	}
	if got := RSD([]float64{0, 0}); got != 0 {
		t.Fatalf("rsd zero-mean: got %v want 0", got)
	}
}

func TestPercentileBounds(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("p0: got %v", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Fatalf("p100: got %v", got)
	}
	if got := Percentile(xs, 50); got != 25 {
		t.Fatalf("p50: got %v want 25", got)
	}
	if got := Percentile(xs, 75); got != 32.5 {
		t.Fatalf("p75: got %v want 32.5", got)
	}
}

func TestPercentileSingleSample(t *testing.T) {
	if got := Percentile([]float64{7}, 75); got != 7 {
		t.Fatalf("single sample percentile: got %v", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 2}
	if Min(xs) != -1 || Max(xs) != 3 || Sum(xs) != 4 {
		t.Fatalf("min/max/sum: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 || Sum(nil) != 0 {
		t.Fatal("empty min/max/sum should be 0")
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	if got := c.Quantile(0.5); got != 3 {
		t.Fatalf("quantile 0.5: got %v want 3", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Fatalf("quantile 0: got %v want 1", got)
	}
	if got := c.Quantile(1); got != 5 {
		t.Fatalf("quantile 1: got %v want 5", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points: got %d want 5", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatalf("points not monotone: %v", pts)
		}
	}
	if pts[len(pts)-1][1] != 1 {
		t.Fatalf("last point fraction: got %v want 1", pts[len(pts)-1][1])
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.Quantile(0.5) != 0 || c.Points(3) != nil || c.Len() != 0 {
		t.Fatal("empty CDF should return zeros")
	}
}

func TestBoxplot(t *testing.T) {
	xs := make([]float64, 0, 100)
	for i := 1; i <= 100; i++ {
		xs = append(xs, float64(i))
	}
	b := NewBoxplot(xs)
	if b.N != 100 {
		t.Fatalf("N: got %d", b.N)
	}
	if !almostEqual(b.Median, 50.5, 1e-9) {
		t.Fatalf("median: got %v", b.Median)
	}
	if !almostEqual(b.Mean, 50.5, 1e-9) {
		t.Fatalf("mean: got %v", b.Mean)
	}
	if b.Q1 >= b.Median || b.Median >= b.Q3 || b.P5 >= b.Q1 || b.Q3 >= b.P95 {
		t.Fatalf("boxplot ordering violated: %+v", b)
	}
}

func TestBoxplotEmpty(t *testing.T) {
	b := NewBoxplot(nil)
	if b.N != 0 || b.Median != 0 {
		t.Fatalf("empty boxplot: %+v", b)
	}
}

func TestBinomialTailEdge(t *testing.T) {
	if got := BinomialTail(10, 0.5, 0); got != 1 {
		t.Fatalf("k=0: got %v", got)
	}
	if got := BinomialTail(10, 0.5, 11); got != 0 {
		t.Fatalf("k>n: got %v", got)
	}
	// Pr[B(1,0.5) >= 1] = 0.5
	if got := BinomialTail(1, 0.5, 1); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("B(1,0.5)>=1: got %v", got)
	}
}

func TestBinomialTailKnown(t *testing.T) {
	// Pr[B(3, 0.5) >= 2] = 3/8 + 1/8 = 0.5
	if got := BinomialTail(3, 0.5, 2); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("B(3,0.5)>=2: got %v", got)
	}
	// Pr[B(4, 0.25) >= 4] = 0.25^4
	if got := BinomialTail(4, 0.25, 4); !almostEqual(got, math.Pow(0.25, 4), 1e-12) {
		t.Fatalf("B(4,0.25)>=4: got %v", got)
	}
}

// The §5 claim: for an adversary that provides high capacity in a fraction
// q < 1/2 of slots and n BWAuths, the attack fails with probability ≥ 0.5,
// i.e. succeeds with probability ≤ 0.5.
func TestBinomialSecurityClaim(t *testing.T) {
	for _, n := range []int{3, 5, 7, 9} {
		for _, q := range []float64{0.1, 0.25, 0.4, 0.49} {
			succ := BinomialTail(n, q, (n+1)/2)
			if succ > 0.5 {
				t.Errorf("n=%d q=%v: success prob %v > 0.5", n, q, succ)
			}
		}
	}
}

func TestTotalVariationDistance(t *testing.T) {
	a := []float64{0.5, 0.5}
	b := []float64{1, 0}
	if got := TotalVariationDistance(a, b); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("tvd: got %v want 0.5", got)
	}
	if got := TotalVariationDistance(a, a); got != 0 {
		t.Fatalf("tvd self: got %v", got)
	}
}

func TestTotalVariationDistanceMismatchedLengths(t *testing.T) {
	a := []float64{0.5, 0.5}
	b := []float64{0.5}
	if got := TotalVariationDistance(a, b); !almostEqual(got, 0.25, 1e-12) {
		t.Fatalf("tvd mismatched: got %v want 0.25", got)
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 3}
	n := Normalize(xs)
	if !almostEqual(n[0], 0.25, 1e-12) || !almostEqual(n[1], 0.75, 1e-12) {
		t.Fatalf("normalize: %v", n)
	}
	if xs[0] != 1 {
		t.Fatal("normalize mutated input")
	}
	z := Normalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("normalize zeros: %v", z)
	}
}

// Property: the median lies between min and max, and is permutation
// invariant.
func TestMedianPropertyQuick(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Median(clean)
		if m < Min(clean) || m > Max(clean) {
			return false
		}
		shuffled := append([]float64(nil), clean...)
		rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return Median(shuffled) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF is monotone non-decreasing and bounded in [0,1].
func TestCDFMonotoneQuick(t *testing.T) {
	f := func(xs []float64, probe []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		c := NewCDF(clean)
		sort.Float64s(probe)
		prev := 0.0
		for _, p := range probe {
			if math.IsNaN(p) {
				continue
			}
			v := c.At(p)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: normalized weights sum to 1 (when the input has positive sum).
func TestNormalizeSumsToOneQuick(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, math.Abs(x))
			}
		}
		n := Normalize(clean)
		total := Sum(clean)
		if total == 0 {
			return true
		}
		return almostEqual(Sum(n), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: TVD is symmetric and within [0, 1] for distributions.
func TestTVDSymmetricQuick(t *testing.T) {
	f := func(a, b []float64) bool {
		na := Normalize(absClean(a))
		nb := Normalize(absClean(b))
		d1 := TotalVariationDistance(na, nb)
		d2 := TotalVariationDistance(nb, na)
		return almostEqual(d1, d2, 1e-9) && d1 >= 0 && d1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func absClean(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
			out = append(out, math.Abs(x))
		}
	}
	return out
}
