// Package trace generates synthetic Tor user traffic following the
// Markov-model approach of the TGen/tmodel pipeline the paper's Shadow
// experiments use (§7, reference [23]): users alternate between idle
// (think) periods and active streams whose sizes follow a heavy-tailed
// distribution dominated by small web-like transfers with occasional bulk
// downloads.
package trace

import (
	"math"
	"math/rand"
	"time"
)

// StreamClass labels the kind of stream the Markov model emitted.
type StreamClass int

// Stream classes. Web streams are small and frequent; interactive streams
// are tiny; bulk streams are rare and large.
const (
	Web StreamClass = iota + 1
	Interactive
	Bulk
)

// Stream is one client-generated transfer.
type Stream struct {
	Start time.Duration
	Bytes float64
	Class StreamClass
}

// ModelParams tunes the Markov traffic model.
type ModelParams struct {
	// MeanThink is the mean idle time between streams.
	MeanThink time.Duration
	// PWeb/PInteractive/PBulk are the state transition probabilities out
	// of idle; they must sum to at most 1 (the remainder re-enters idle).
	PWeb, PInteractive, PBulk float64
	// Mean sizes per class in bytes.
	WebBytes, InteractiveBytes, BulkBytes float64
}

// DefaultParams returns parameters calibrated so that a population of
// clients produces Tor-like load: mostly sub-MiB web fetches with a
// heavy tail of multi-MiB bulk flows.
func DefaultParams() ModelParams {
	return ModelParams{
		MeanThink:        30 * time.Second,
		PWeb:             0.70,
		PInteractive:     0.15,
		PBulk:            0.15,
		WebBytes:         320 << 10, // ~320 KiB
		InteractiveBytes: 8 << 10,   // ~8 KiB
		BulkBytes:        5 << 20,   // ~5 MiB
	}
}

// Client is one Markov-model user generating streams.
type Client struct {
	params ModelParams
	rng    *rand.Rand
}

// NewClient creates a client with its own deterministic RNG stream.
func NewClient(params ModelParams, seed int64) *Client {
	return &Client{params: params, rng: rand.New(rand.NewSource(seed))}
}

// Generate emits all streams the client starts within [0, horizon).
func (c *Client) Generate(horizon time.Duration) []Stream {
	var out []Stream
	now := time.Duration(0)
	for {
		think := c.expDuration(c.params.MeanThink)
		now += think
		if now >= horizon {
			return out
		}
		u := c.rng.Float64()
		var class StreamClass
		var mean float64
		switch {
		case u < c.params.PWeb:
			class, mean = Web, c.params.WebBytes
		case u < c.params.PWeb+c.params.PInteractive:
			class, mean = Interactive, c.params.InteractiveBytes
		case u < c.params.PWeb+c.params.PInteractive+c.params.PBulk:
			class, mean = Bulk, c.params.BulkBytes
		default:
			continue // back to idle
		}
		size := c.lognormalBytes(mean)
		out = append(out, Stream{Start: now, Bytes: size, Class: class})
	}
}

// expDuration draws an exponential holding time with the given mean.
func (c *Client) expDuration(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(c.rng.ExpFloat64() * float64(mean))
}

// lognormalBytes draws a size with the given mean and a right-skewed shape
// (σ=0.75 of the underlying normal), floored at one cell payload.
func (c *Client) lognormalBytes(mean float64) float64 {
	const sigma = 0.75
	mu := math.Log(mean) - sigma*sigma/2
	v := math.Exp(mu + sigma*c.rng.NormFloat64())
	if v < 512 {
		v = 512
	}
	return v
}

// Population generates streams for n clients over the horizon and returns
// them per client. Client i uses seed base+i so populations are
// reproducible.
func Population(params ModelParams, n int, baseSeed int64, horizon time.Duration) [][]Stream {
	out := make([][]Stream, n)
	for i := range out {
		out[i] = NewClient(params, baseSeed+int64(i)).Generate(horizon)
	}
	return out
}

// OfferedLoadBps returns the mean offered load of a population in bits per
// second over the horizon.
func OfferedLoadBps(streams [][]Stream, horizon time.Duration) float64 {
	var total float64
	for _, cs := range streams {
		for _, s := range cs {
			total += s.Bytes
		}
	}
	if horizon <= 0 {
		return 0
	}
	return total * 8 / horizon.Seconds()
}

// Scale multiplies every stream size by factor, implementing the paper's
// 115 % and 130 % extra-load configurations (§7).
func Scale(streams [][]Stream, factor float64) [][]Stream {
	out := make([][]Stream, len(streams))
	for i, cs := range streams {
		out[i] = make([]Stream, len(cs))
		for j, s := range cs {
			s.Bytes *= factor
			out[i][j] = s
		}
	}
	return out
}
