package trace

import (
	"math"
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams()
	a := NewClient(p, 42).Generate(time.Hour)
	b := NewClient(p, 42).Generate(time.Hour)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := NewClient(p, 43).Generate(time.Hour)
	if len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestStreamsWithinHorizon(t *testing.T) {
	horizon := 30 * time.Minute
	for _, s := range NewClient(DefaultParams(), 1).Generate(horizon) {
		if s.Start < 0 || s.Start >= horizon {
			t.Fatalf("stream outside horizon: %v", s.Start)
		}
		if s.Bytes < 512 {
			t.Fatalf("stream below one cell payload: %v", s.Bytes)
		}
	}
}

func TestStreamStartsMonotone(t *testing.T) {
	streams := NewClient(DefaultParams(), 7).Generate(time.Hour)
	for i := 1; i < len(streams); i++ {
		if streams[i].Start < streams[i-1].Start {
			t.Fatal("stream starts must be non-decreasing")
		}
	}
}

func TestClassMix(t *testing.T) {
	// Over a long horizon the class mix should roughly match the
	// transition probabilities.
	streams := NewClient(DefaultParams(), 99).Generate(100 * time.Hour)
	if len(streams) < 1000 {
		t.Fatalf("too few streams to test mix: %d", len(streams))
	}
	counts := map[StreamClass]int{}
	for _, s := range streams {
		counts[s.Class]++
	}
	webFrac := float64(counts[Web]) / float64(len(streams))
	if math.Abs(webFrac-0.70) > 0.05 {
		t.Fatalf("web fraction: got %v want ≈0.70", webFrac)
	}
	if counts[Bulk] == 0 || counts[Interactive] == 0 {
		t.Fatal("expected all classes present")
	}
}

func TestBulkDominatesBytes(t *testing.T) {
	// The heavy tail: bulk streams are a minority by count but carry the
	// majority of bytes — the property that makes load balancing matter.
	streams := NewClient(DefaultParams(), 5).Generate(100 * time.Hour)
	var bulkBytes, total float64
	for _, s := range streams {
		total += s.Bytes
		if s.Class == Bulk {
			bulkBytes += s.Bytes
		}
	}
	if bulkBytes/total < 0.5 {
		t.Fatalf("bulk bytes fraction: got %v want > 0.5", bulkBytes/total)
	}
}

func TestPopulationReproducible(t *testing.T) {
	p := DefaultParams()
	a := Population(p, 5, 1000, time.Hour)
	b := Population(p, 5, 1000, time.Hour)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("client %d trace lengths differ", i)
		}
	}
	if len(a) != 5 {
		t.Fatalf("population size: %d", len(a))
	}
}

func TestOfferedLoadScalesWithClients(t *testing.T) {
	p := DefaultParams()
	small := OfferedLoadBps(Population(p, 10, 1, 10*time.Hour), 10*time.Hour)
	large := OfferedLoadBps(Population(p, 100, 1, 10*time.Hour), 10*time.Hour)
	if large < 5*small {
		t.Fatalf("10× clients should offer ≈10× load: %v vs %v", small, large)
	}
}

func TestOfferedLoadZeroHorizon(t *testing.T) {
	if got := OfferedLoadBps(nil, 0); got != 0 {
		t.Fatalf("zero horizon: %v", got)
	}
}

func TestScale(t *testing.T) {
	p := DefaultParams()
	base := Population(p, 3, 50, time.Hour)
	scaled := Scale(base, 1.3)
	for i := range base {
		for j := range base[i] {
			want := base[i][j].Bytes * 1.3
			if math.Abs(scaled[i][j].Bytes-want) > 1e-9 {
				t.Fatalf("scale: got %v want %v", scaled[i][j].Bytes, want)
			}
			if scaled[i][j].Start != base[i][j].Start {
				t.Fatal("scale must not change start times")
			}
		}
	}
	// 130 % load: offered load is 1.3×.
	lb := OfferedLoadBps(base, time.Hour)
	ls := OfferedLoadBps(scaled, time.Hour)
	if math.Abs(ls/lb-1.3) > 1e-9 {
		t.Fatalf("offered load ratio: got %v want 1.3", ls/lb)
	}
}
