// Package speedtest reproduces the paper's relay speed test experiment
// (§3.4, Fig. 5): flooding every relay with SPEEDTEST cells for 20 seconds
// pushes relays into reporting observed bandwidths near their true
// capacity, raising the network capacity estimate by ≈50 % and the network
// weight error by 5–10 % until the 5-day observed-bandwidth history and
// the load-balancing loop wash the effect out.
package speedtest

import (
	"errors"
	"math"
	"math/rand"
	"time"
)

// Params configures the experiment simulation.
type Params struct {
	// NumRelays is the relay population.
	NumRelays int
	// Span is the simulated range (the paper's Fig. 5 shows ~12 days).
	Span time.Duration
	// TestStart and TestDuration place the flood (the paper's test ran
	// 51 hours starting 2019-08-06).
	TestStart    time.Duration
	TestDuration time.Duration
	// DescriptorInterval (18 h) and ObsHistory (5 days) are Tor's
	// publication and retention parameters.
	DescriptorInterval time.Duration
	ObsHistory         time.Duration
	// WeightLag is the time constant of the load-balancing loop's
	// response to changed advertised bandwidths.
	WeightLag time.Duration
	// MeanUtilLow/High and UtilSigma shape the background utilization.
	MeanUtilLow, MeanUtilHigh, UtilSigma float64
	// Seed drives the RNG.
	Seed int64
}

// DefaultParams mirrors the paper's setup at hourly resolution.
func DefaultParams() Params {
	return Params{
		NumRelays:          400,
		Span:               14 * 24 * time.Hour,
		TestStart:          4 * 24 * time.Hour,
		TestDuration:       51 * time.Hour,
		DescriptorInterval: 18 * time.Hour,
		ObsHistory:         5 * 24 * time.Hour,
		WeightLag:          72 * time.Hour,
		MeanUtilLow:        0.15,
		MeanUtilHigh:       0.90,
		UtilSigma:          0.30,
		Seed:               1,
	}
}

// Timeline is the experiment output, hourly.
type Timeline struct {
	// Hours[t] is the sample time.
	Hours []time.Duration
	// CapacityEstimateBps[t] is the sum of advertised bandwidths — the
	// paper's "Capacity (Gbit/s)" curve.
	CapacityEstimateBps []float64
	// NWE[t] is the network weight error (Eq. 6), with the normalized
	// capacity estimated as the paper does: the maximum advertised
	// bandwidth over the trailing week.
	NWE []float64
	// TrueCapacityBps is the (constant) total true capacity.
	TrueCapacityBps float64
}

// Summary condenses the Fig. 5 observations.
type Summary struct {
	// BaselineBps and PeakBps are the capacity estimates before the test
	// and at their post-test maximum.
	BaselineBps, PeakBps float64
	// GainFrac is (peak−baseline)/baseline — the paper found ≈0.5.
	GainFrac float64
	// NWEBaseline and NWEPeak bracket the weight-error excursion — the
	// paper found a rise of 5–10 %.
	NWEBaseline, NWEPeak float64
}

// ErrBadParams reports invalid parameters.
var ErrBadParams = errors.New("speedtest: bad params")

// Run simulates the experiment.
func Run(p Params) (*Timeline, Summary, error) {
	if p.NumRelays <= 0 || p.Span <= 0 || p.TestDuration <= 0 {
		return nil, Summary{}, ErrBadParams
	}
	rng := rand.New(rand.NewSource(p.Seed))
	hours := int(p.Span / time.Hour)
	intervalH := int(p.DescriptorInterval / time.Hour)
	obsH := int(p.ObsHistory / time.Hour)

	type relayState struct {
		capBps     float64
		baseUtil   float64
		floodHour  int       // when this relay is flooded
		descOffset int       // publication phase
		peaks      []float64 // peak 10 s utilization per descriptor interval
		advertised float64
		weight     float64
		bias       float64
	}

	intervals := hours/maxInt(intervalH, 1) + 2
	relays := make([]relayState, p.NumRelays)
	var totalCap float64
	testHours := int(p.TestDuration / time.Hour)
	for i := range relays {
		capBps := 20e6 * math.Exp(rng.NormFloat64()*1.2)
		if capBps > 1e9 {
			capBps = 1e9
		}
		totalCap += capBps
		relays[i] = relayState{
			capBps:     capBps,
			baseUtil:   p.MeanUtilLow + rng.Float64()*(p.MeanUtilHigh-p.MeanUtilLow),
			floodHour:  int(p.TestStart/time.Hour) + rng.Intn(maxInt(testHours, 1)),
			descOffset: rng.Intn(maxInt(intervalH, 1)),
			peaks:      make([]float64, intervals),
			bias:       math.Exp(rng.NormFloat64() * 0.3),
		}
		// Background peak-utilization process: one draw per descriptor
		// interval (the 10-second-peak heuristic smooths within it).
		for k := 0; k < intervals; k++ {
			u := relays[i].baseUtil * math.Exp(rng.NormFloat64()*p.UtilSigma)
			if u > 1 {
				u = 1
			}
			relays[i].peaks[k] = u
		}
		// The 20-second flood saturates the relay: a full-rate 10-second
		// average, so its interval's peak becomes 1.
		if k := relays[i].floodHour / maxInt(intervalH, 1); k >= 0 && k < intervals {
			relays[i].peaks[k] = 1
		}
	}

	tl := &Timeline{
		Hours:               make([]time.Duration, hours),
		CapacityEstimateBps: make([]float64, hours),
		NWE:                 make([]float64, hours),
		TrueCapacityBps:     totalCap,
	}
	lagAlpha := 1 - math.Exp(-1/(p.WeightLag.Hours()))
	advHistory := make([][]float64, p.NumRelays)
	for i := range advHistory {
		advHistory[i] = make([]float64, hours)
	}
	weights := make([][]float64, p.NumRelays)
	for i := range weights {
		weights[i] = make([]float64, hours)
	}

	obsIntervals := obsH/maxInt(intervalH, 1) + 1
	for h := 0; h < hours; h++ {
		tl.Hours[h] = time.Duration(h) * time.Hour
		var sumAdv float64
		for i := range relays {
			r := &relays[i]
			// Descriptor publication every 18 h (per-relay phase):
			// observed bandwidth is the max 10 s peak over the trailing
			// 5 days of intervals. The flood only becomes visible at the
			// relay's next publication — the paper's reporting delay.
			if h == 0 || (h+r.descOffset)%maxInt(intervalH, 1) == 0 {
				k := h / maxInt(intervalH, 1)
				lo := k - obsIntervals + 1
				if lo < 0 {
					lo = 0
				}
				m := 0.0
				for j := lo; j <= k && j < len(r.peaks); j++ {
					if r.peaks[j] > m {
						m = r.peaks[j]
					}
				}
				r.advertised = r.capBps * m
			}
			// The load-balancing loop follows advertised bandwidth with
			// a lag.
			target := r.advertised * r.bias
			if h == 0 {
				r.weight = target
			} else {
				r.weight += lagAlpha * (target - r.weight)
			}
			advHistory[i][h] = r.advertised
			weights[i][h] = r.weight
			sumAdv += r.advertised
		}
		tl.CapacityEstimateBps[h] = sumAdv
	}

	// NWE per Eq. 6, with C(r,t,p) the trailing-week max of advertised
	// bandwidth (the paper's capacity proxy).
	const weekH = 7 * 24
	for h := 0; h < hours; h++ {
		var sumW, sumC float64
		caps := make([]float64, p.NumRelays)
		for i := range relays {
			lo := h - weekH + 1
			if lo < 0 {
				lo = 0
			}
			m := 0.0
			for j := lo; j <= h; j++ {
				if advHistory[i][j] > m {
					m = advHistory[i][j]
				}
			}
			caps[i] = m
			sumC += m
			sumW += weights[i][h]
		}
		var nwe float64
		if sumW > 0 && sumC > 0 {
			for i := range relays {
				nwe += math.Abs(weights[i][h]/sumW - caps[i]/sumC)
			}
		}
		tl.NWE[h] = nwe / 2
	}

	return tl, summarize(tl, p), nil
}

func summarize(tl *Timeline, p Params) Summary {
	preEnd := int(p.TestStart / time.Hour)
	if preEnd <= 0 || preEnd > len(tl.CapacityEstimateBps) {
		preEnd = len(tl.CapacityEstimateBps)
	}
	var s Summary
	var n int
	for h := 0; h < preEnd; h++ {
		s.BaselineBps += tl.CapacityEstimateBps[h]
		s.NWEBaseline += tl.NWE[h]
		n++
	}
	if n > 0 {
		s.BaselineBps /= float64(n)
		s.NWEBaseline /= float64(n)
	}
	for h := preEnd; h < len(tl.CapacityEstimateBps); h++ {
		if tl.CapacityEstimateBps[h] > s.PeakBps {
			s.PeakBps = tl.CapacityEstimateBps[h]
		}
		if tl.NWE[h] > s.NWEPeak {
			s.NWEPeak = tl.NWE[h]
		}
	}
	if s.BaselineBps > 0 {
		s.GainFrac = (s.PeakBps - s.BaselineBps) / s.BaselineBps
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
