package speedtest

import (
	"testing"
	"time"
)

func TestRunProducesTimeline(t *testing.T) {
	tl, s, err := Run(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Hours) != 14*24 {
		t.Fatalf("hours: %d", len(tl.Hours))
	}
	if len(tl.CapacityEstimateBps) != len(tl.Hours) || len(tl.NWE) != len(tl.Hours) {
		t.Fatal("series lengths mismatch")
	}
	if s.BaselineBps <= 0 || s.PeakBps <= 0 {
		t.Fatalf("summary: %+v", s)
	}
}

func TestCapacityGainNearPaper(t *testing.T) {
	// Fig. 5: the flood discovers ≈50 % excess capacity. Accept a
	// generous band since the gain depends on background utilization.
	_, s, err := Run(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if s.GainFrac < 0.2 || s.GainFrac > 1.0 {
		t.Fatalf("capacity gain: got %.2f want ≈0.5", s.GainFrac)
	}
}

func TestWeightErrorRisesDuringTest(t *testing.T) {
	// Fig. 5: weight error increases 5–10 % during the test because
	// capacity estimates improve faster than weights adjust.
	_, s, err := Run(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rise := s.NWEPeak - s.NWEBaseline
	if rise < 0.02 {
		t.Fatalf("weight error rise too small: %v", rise)
	}
	if rise > 0.3 {
		t.Fatalf("weight error rise implausibly large: %v", rise)
	}
}

func TestCapacityNeverExceedsTruth(t *testing.T) {
	tl, _, err := Run(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for h, c := range tl.CapacityEstimateBps {
		if c > tl.TrueCapacityBps*(1+1e-9) {
			t.Fatalf("hour %d: estimate %v exceeds true capacity %v", h, c, tl.TrueCapacityBps)
		}
	}
}

func TestEffectDecaysAfterHistoryExpires(t *testing.T) {
	// After the 5-day observed-bandwidth history expires, the capacity
	// estimate falls back toward baseline.
	p := DefaultParams()
	p.Span = 16 * 24 * time.Hour
	tl, s, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	last := tl.CapacityEstimateBps[len(tl.CapacityEstimateBps)-1]
	if last >= s.PeakBps {
		t.Fatalf("estimate should decay after history expiry: last %v ≥ peak %v", last, s.PeakBps)
	}
	// Back within 20 % of baseline by the end.
	if last > s.BaselineBps*1.25 {
		t.Fatalf("estimate did not return to baseline: last %v baseline %v", last, s.BaselineBps)
	}
}

func TestDeterministic(t *testing.T) {
	_, s1, err := Run(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := Run(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("not deterministic: %+v vs %+v", s1, s2)
	}
}

func TestBadParams(t *testing.T) {
	if _, _, err := Run(Params{}); err == nil {
		t.Fatal("zero params should error")
	}
}
