package adversary

import (
	"math/rand"
	"sync"

	"flashflow/internal/cell"
	"flashflow/internal/core"
)

// draws memoizes one float64 draw per second so a Slot's Transform is
// deterministic when called twice for the same second (stream pass and
// authoritative-record pass). Seconds are generated in order on first
// sight, so a slot whose stream was never consumed draws the identical
// sequence during the record pass.
type draws struct {
	rng  *rand.Rand
	vals []float64
}

func (d *draws) at(second int) float64 {
	for len(d.vals) <= second {
		d.vals = append(d.vals, d.rng.Float64())
	}
	return d.vals[second]
}

// Inflate is the §5 bandwidth-inflation attack: the relay fabricates its
// normal-traffic report, claiming Factor times the measurement traffic it
// actually echoed (core.BehaviorInflateNormal's lie, applied to any
// backend). The §4.1 r-ratio clamp bounds the resulting estimate to
// 1/(1−r) times the verified traffic no matter how large Factor is.
type Inflate struct {
	// Factor is the claimed normal traffic as a multiple of the real
	// per-second measurement bytes (10 ≈ the sim backend's lie).
	Factor float64
}

// Name implements Attack.
func (Inflate) Name() string { return "inflate" }

type inflateSlot struct{ factor float64 }

// NewSlot implements Attack.
func (a Inflate) NewSlot(_, _ string, _ core.Allocation, _ int, _ *rand.Rand) Slot {
	return inflateSlot{factor: a.Factor}
}

func (s inflateSlot) Transform(_ int, measBytes []float64, normBytes *float64) bool {
	var x float64
	for _, v := range measBytes {
		x += v
	}
	*normBytes = x * s.factor
	return false
}

// SelectiveLie runs a sub-attack only against some BWAuths and behaves
// honestly toward the rest — the split-view attack on the cross-BWAuth
// median vote. With n BWAuths the median discards the lie unless the
// relay lies to a majority, and lying to a majority exposes it to every
// one of those teams' defenses; the coordinator's split-view anomaly
// counter records the disagreement either way.
type SelectiveLie struct {
	// LieTo is the set of BWAuth names that see the sub-attack.
	LieTo map[string]bool
	// Sub is the behavior shown to those BWAuths.
	Sub Attack
}

// Name implements Attack.
func (a SelectiveLie) Name() string { return "selective" }

type honestSlot struct{}

func (honestSlot) Transform(int, []float64, *float64) bool { return false }

// NewSlot implements Attack.
func (a SelectiveLie) NewSlot(auth, target string, alloc core.Allocation, seconds int, rng *rand.Rand) Slot {
	if a.LieTo[auth] && a.Sub != nil {
		return a.Sub.NewSlot(auth, target, alloc, seconds, rng)
	}
	return honestSlot{}
}

// EchoCheat is the §5 echo-forging attack: the relay acks measurement
// cells without performing the relay crypto, gaining Boost times its
// honest apparent capacity — and exposing every echoed cell to the
// probability-p content check. Detection per second follows
// core.DetectionProbability over the cells echoed that second, exactly
// the sim backend's BehaviorForgeEcho model.
type EchoCheat struct {
	// Boost multiplies the echoed bytes (2 ≈ skipping AES on both
	// directions).
	Boost float64
	// CheckProb is the verification probability p each echoed cell is
	// checked with; zero disables detection (a misconfigured team).
	CheckProb float64
}

// Name implements Attack.
func (EchoCheat) Name() string { return "echo-cheat" }

type echoCheatSlot struct {
	boost float64
	p     float64
	d     draws
}

// NewSlot implements Attack.
func (a EchoCheat) NewSlot(_, _ string, _ core.Allocation, _ int, rng *rand.Rand) Slot {
	return &echoCheatSlot{boost: a.Boost, p: a.CheckProb, d: draws{rng: rng}}
}

func (s *echoCheatSlot) Transform(second int, measBytes []float64, normBytes *float64) bool {
	var total float64
	for i := range measBytes {
		measBytes[i] *= s.boost
		total += measBytes[i]
	}
	if s.p <= 0 {
		return false
	}
	// Every echoed cell this second is forged (nothing was decrypted).
	forged := total / float64(cell.Size)
	return s.d.at(second) < core.DetectionProbability(s.p, forged)
}

// Pool models a colluding relay family's shared capacity: members lend
// each other capacity so whichever member is being measured demonstrates
// the whole pool. The §5 defense is simultaneous measurement — when the
// suspected family is measured in the same slot (core.TestFamilyPair,
// or a schedule that co-slots families), the pool splits across the
// members under measurement and the lie stops paying.
//
// SetSimultaneous declares which members the current scenario measures in
// the same slot; the split is computed from that declaration rather than
// from runtime overlap so matrix runs are deterministic.
type Pool struct {
	mu           sync.Mutex
	capacity     map[string]float64
	simultaneous map[string]bool
}

// NewPool creates an empty family pool.
func NewPool() *Pool {
	return &Pool{
		capacity:     make(map[string]float64),
		simultaneous: make(map[string]bool),
	}
}

// AddMember registers a family member and its true capacity.
func (p *Pool) AddMember(name string, capacityBps float64) {
	p.mu.Lock()
	p.capacity[name] = capacityBps
	p.mu.Unlock()
}

// TotalBps returns the family's pooled capacity.
func (p *Pool) TotalBps() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var t float64
	for _, c := range p.capacity {
		t += c
	}
	return t
}

// SetSimultaneous declares the members measured in the same slot (the §5
// defense); nil or empty reverts to one-at-a-time measurement.
func (p *Pool) SetSimultaneous(members []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	clear(p.simultaneous)
	for _, m := range members {
		p.simultaneous[m] = true
	}
}

// shareFor returns the pooled capacity available to one member under the
// current measurement pattern: the whole pool when measured alone, a
// 1/k split when k members are co-slotted.
func (p *Pool) shareFor(member string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total float64
	for _, c := range p.capacity {
		total += c
	}
	k := 1
	if p.simultaneous[member] {
		k = 0
		for m := range p.simultaneous {
			if _, ok := p.capacity[m]; ok {
				k++
			}
		}
		if k == 0 {
			k = 1
		}
	}
	return total / float64(k)
}

// Collude is the family-collusion attack bound to one member: during the
// member's slot the rest of the family relays on its behalf, so its echo
// scales up to the pool share — capped by what the measurers actually
// sent, since even a colluding family cannot echo bytes that never
// arrived.
type Collude struct {
	Pool   *Pool
	Member string
}

// Name implements Attack.
func (Collude) Name() string { return "collude" }

type colludeSlot struct {
	boost  float64
	sentBy []float64 // per-measurer per-second send ceiling, bytes
}

// NewSlot implements Attack.
func (a Collude) NewSlot(_, _ string, alloc core.Allocation, _ int, _ *rand.Rand) Slot {
	member := a.Pool.capacityOf(a.Member)
	boost := 1.0
	if member > 0 {
		boost = a.Pool.shareFor(a.Member) / member
	}
	if boost < 0 {
		boost = 0
	}
	sent := make([]float64, len(alloc.PerMeasurerBps))
	for i, bps := range alloc.PerMeasurerBps {
		sent[i] = bps / 8
	}
	return &colludeSlot{boost: boost, sentBy: sent}
}

func (p *Pool) capacityOf(member string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity[member]
}

func (s *colludeSlot) Transform(_ int, measBytes []float64, _ *float64) bool {
	for i := range measBytes {
		v := measBytes[i] * s.boost
		if i < len(s.sentBy) && v > s.sentBy[i] {
			v = s.sentBy[i]
		}
		measBytes[i] = v
	}
	return false
}

// Stall is the slot-burning attack: the relay deliberately echoes just
// above the §4.2 acceptance bound so every attempt ends rejected and the
// doubling loop — and the scheduler slots and team capacity behind it —
// is consumed to its limit. The relay cannot echo beyond its own true
// capacity (stalling is capacity misuse, not crypto forgery), so once the
// doubling loop's bound outgrows the capacity, the measurement concludes
// at the honest value; the damage is the slots burned on the way, which
// the stall-suspect anomaly counter records.
type Stall struct {
	// Eps1 and Multiplier mirror the Params the victim measures with;
	// the rejection threshold per attempt is alloc·(1−Eps1)/Multiplier.
	Eps1, Multiplier float64
	// Margin keeps the echo just above the threshold (1.05 default-ish).
	Margin float64
	// CapacityBps is the relay's true capacity — the echo ceiling.
	CapacityBps float64
}

// Name implements Attack.
func (Stall) Name() string { return "stall" }

type stallSlot struct {
	targetBytes float64   // per-second total to echo
	shares      []float64 // per-measurer fraction of the total
	sentBy      []float64 // per-measurer ceiling, bytes/s
}

// NewSlot implements Attack.
func (a Stall) NewSlot(_, _ string, alloc core.Allocation, _ int, _ *rand.Rand) Slot {
	margin := a.Margin
	if margin <= 0 {
		margin = 1.05
	}
	bound := alloc.TotalBps * (1 - a.Eps1) / a.Multiplier * margin
	if a.CapacityBps > 0 && bound > a.CapacityBps {
		bound = a.CapacityBps
	}
	shares := make([]float64, len(alloc.PerMeasurerBps))
	sent := make([]float64, len(alloc.PerMeasurerBps))
	for i, bps := range alloc.PerMeasurerBps {
		if alloc.TotalBps > 0 {
			shares[i] = bps / alloc.TotalBps
		}
		sent[i] = bps / 8
	}
	return &stallSlot{targetBytes: bound / 8, shares: shares, sentBy: sent}
}

func (s *stallSlot) Transform(_ int, measBytes []float64, normBytes *float64) bool {
	for i := range measBytes {
		v := s.targetBytes * s.shares[i]
		if i < len(s.sentBy) && v > s.sentBy[i] {
			v = s.sentBy[i]
		}
		measBytes[i] = v
	}
	*normBytes = 0
	return false
}
