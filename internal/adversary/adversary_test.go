package adversary

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/metrics"
	"flashflow/internal/relay"
)

const trueCapBps = 200e6

func quietPaths() []core.PathModel {
	return []core.PathModel{
		{RTT: 40 * time.Millisecond, LinkBps: 1e9},
		{RTT: 90 * time.Millisecond, LinkBps: 1e9},
		{RTT: 140 * time.Millisecond, LinkBps: 1e9},
	}
}

func team() []*core.Measurer {
	return []*core.Measurer{
		{Name: "m1", CapacityBps: 1e9, Cores: 4},
		{Name: "m2", CapacityBps: 1e9, Cores: 4},
		{Name: "m3", CapacityBps: 1e9, Cores: 4},
	}
}

// simFor builds an honest sim target wrapped by an adversary backend.
func simFor(t *testing.T, name string, capBps float64, seed int64) *Backend {
	t.Helper()
	inner := core.NewSimBackend(quietPaths(), seed)
	inner.AddTarget(name, &core.SimTarget{
		Relay:    relay.New(relay.Config{Name: name, TorCapBps: capBps}),
		LinkBps:  1e9,
		Behavior: core.BehaviorHonest,
	})
	return New(inner, "bw0", seed)
}

func measure(t *testing.T, b core.Backend, name string, prior float64) (core.MeasureOutcome, error) {
	t.Helper()
	return core.MeasureRelay(context.Background(), b, team(), name, prior, core.DefaultParams())
}

func TestPassThroughHonest(t *testing.T) {
	b := simFor(t, "honest", trueCapBps, 1)
	out, err := measure(t, b, "honest", trueCapBps)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := out.EstimateBps / trueCapBps; ratio < 0.85 || ratio > 1.1 {
		t.Fatalf("honest pass-through estimate %.1f Mbit/s = %.2fx truth", out.EstimateBps/1e6, ratio)
	}
}

func TestInflateClampedToBound(t *testing.T) {
	p := core.DefaultParams()
	b := simFor(t, "liar", trueCapBps, 2)
	b.SetAttack("liar", Inflate{Factor: 50})
	out, err := measure(t, b, "liar", trueCapBps)
	if err != nil {
		t.Fatal(err)
	}
	ratio := out.EstimateBps / trueCapBps
	if ratio > p.MaxInflation()*1.05 {
		t.Fatalf("inflation attack gained %.2fx, bound is %.2fx", ratio, p.MaxInflation())
	}
	if ratio < 1.1 {
		t.Fatalf("inflation attack gained only %.2fx — the lie should approach the %.2fx clamp", ratio, p.MaxInflation())
	}
	// The defense left fingerprints: every full second's report was
	// clamped.
	counts := core.OutcomeAnomalies(out, p)
	if counts.ClampedSeconds == 0 {
		t.Fatal("inflation attack left no clamped-second anomaly evidence")
	}
}

func TestSelectiveLieOnlyHitsTargetAuths(t *testing.T) {
	attack := SelectiveLie{LieTo: map[string]bool{"bw0": true}, Sub: Inflate{Factor: 50}}

	lied := simFor(t, "split", trueCapBps, 3) // auth bw0
	lied.SetAttack("split", attack)
	outLied, err := measure(t, lied, "split", trueCapBps)
	if err != nil {
		t.Fatal(err)
	}

	honestAuth := New(coreSimWithTarget("split", trueCapBps, 3), "bw1", 3)
	honestAuth.SetAttack("split", attack)
	outHonest, err := measure(t, honestAuth, "split", trueCapBps)
	if err != nil {
		t.Fatal(err)
	}

	if outLied.EstimateBps < 1.15*trueCapBps {
		t.Fatalf("lied-to auth saw %.2fx, want inflated", outLied.EstimateBps/trueCapBps)
	}
	if outHonest.EstimateBps > 1.1*trueCapBps {
		t.Fatalf("honest auth saw %.2fx, want ~1x", outHonest.EstimateBps/trueCapBps)
	}
}

func coreSimWithTarget(name string, capBps float64, seed int64) *core.SimBackend {
	inner := core.NewSimBackend(quietPaths(), seed)
	inner.AddTarget(name, &core.SimTarget{
		Relay:    relay.New(relay.Config{Name: name, TorCapBps: capBps}),
		LinkBps:  1e9,
		Behavior: core.BehaviorHonest,
	})
	return inner
}

func TestEchoCheatCaught(t *testing.T) {
	p := core.DefaultParams()
	b := simFor(t, "forger", trueCapBps, 4)
	ctr := metrics.NewCounters()
	b.Counters = ctr
	b.SetAttack("forger", EchoCheat{Boost: 2, CheckProb: p.CheckProb})
	_, err := measure(t, b, "forger", trueCapBps)
	// At 1e-5 per-cell checks and ~50k forged cells per second, the
	// per-second detection probability is ≈0.4: over a 30-second slot the
	// relay is caught with overwhelming probability.
	if !errors.Is(err, core.ErrMeasurementFailed) {
		t.Fatalf("echo-cheat evaded detection: err=%v", err)
	}
	if ctr.Get("adversary_slots_caught") == 0 {
		t.Fatal("caught counter not incremented")
	}
}

func TestEchoCheatUncheckedTeamInflates(t *testing.T) {
	b := simFor(t, "forger", trueCapBps, 5)
	b.SetAttack("forger", EchoCheat{Boost: 2, CheckProb: 0})
	out, err := measure(t, b, "forger", trueCapBps)
	if err != nil {
		t.Fatal(err)
	}
	if out.EstimateBps < 1.5*trueCapBps {
		t.Fatalf("unchecked echo-cheat gained only %.2fx, want ~2x", out.EstimateBps/trueCapBps)
	}
}

func TestColludePoolAndSimultaneousDefense(t *testing.T) {
	pool := NewPool()
	pool.AddMember("evil0", trueCapBps)
	pool.AddMember("evil1", trueCapBps)

	est := func(member string, seed int64) float64 {
		b := simFor(t, member, trueCapBps, seed)
		b.SetAttack(member, Collude{Pool: pool, Member: member})
		out, err := measure(t, b, member, trueCapBps)
		if err != nil {
			t.Fatal(err)
		}
		return out.EstimateBps
	}

	// Measured one at a time, each member demonstrates the whole pool.
	solo := est("evil0", 6)
	if solo < 1.7*trueCapBps {
		t.Fatalf("collusion solo estimate %.2fx, want ~2x (the pool)", solo/trueCapBps)
	}

	// The §5 defense: measure the family simultaneously — the pool
	// splits and the family total collapses to the truth.
	pool.SetSimultaneous([]string{"evil0", "evil1"})
	defended0 := est("evil0", 7)
	defended1 := est("evil1", 8)
	famTotal := defended0 + defended1
	if famTotal > 1.25*2*trueCapBps {
		t.Fatalf("simultaneous measurement still credits %.2fx the family's true capacity", famTotal/(2*trueCapBps))
	}
}

func TestStallBurnsSlotsWithoutInflation(t *testing.T) {
	p := core.DefaultParams()
	// An undersized fresh-relay prior and a large capacity: the stall
	// attack drags the doubling loop's growth from ×f ≈ 2.95 (honest
	// echo ≈ the full allocation) down to the ×2 floor, so the gap to
	// the relay's capacity costs extra slots.
	const stallCapBps = 800e6
	prior := 50e6

	honest := simFor(t, "honest", stallCapBps, 9)
	outHonest, err := measure(t, honest, "honest", prior)
	if err != nil {
		t.Fatal(err)
	}

	b := simFor(t, "staller", stallCapBps, 9)
	b.SetAttack("staller", Stall{Eps1: p.Eps1, Multiplier: p.Multiplier, CapacityBps: stallCapBps})
	out, err := measure(t, b, "staller", prior)
	if err != nil {
		t.Fatal(err)
	}

	if out.EstimateBps > p.MaxInflation()*stallCapBps*1.05 {
		t.Fatalf("stalling inflated the estimate to %.2fx", out.EstimateBps/stallCapBps)
	}
	if out.SlotsUsed() <= outHonest.SlotsUsed() {
		t.Fatalf("stalling burned %d slots vs honest %d — the attack should cost the scheduler slots", out.SlotsUsed(), outHonest.SlotsUsed())
	}
	counts := core.OutcomeAnomalies(out, p)
	if counts.StallSuspectSlots == 0 {
		t.Fatalf("stall pattern not flagged: %+v (attempts %d)", counts, out.SlotsUsed())
	}
	honestCounts := core.OutcomeAnomalies(outHonest, p)
	if honestCounts.StallSuspectSlots != 0 {
		t.Fatalf("honest relay flagged as staller: %+v", honestCounts)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		b := simFor(t, "liar", trueCapBps, 11)
		b.SetAttack("liar", Inflate{Factor: 50})
		out, err := measure(t, b, "liar", trueCapBps)
		if err != nil {
			t.Fatal(err)
		}
		return out.EstimateBps
	}
	a, bb := run(), run()
	if math.Abs(a-bb) > 1e-6 {
		t.Fatalf("nondeterministic attack pipeline: %.3f vs %.3f", a, bb)
	}
}

// TestStreamMatchesRecord pins the contract that the transformed sample
// stream and the returned MeasurementData agree second for second.
func TestStreamMatchesRecord(t *testing.T) {
	b := simFor(t, "liar", trueCapBps, 12)
	b.SetAttack("liar", Inflate{Factor: 50})
	var streamed []core.Sample
	sink := func(s core.Sample) {
		cp := core.Sample{Second: s.Second, NormBytes: s.NormBytes}
		cp.MeasBytes = append([]float64(nil), s.MeasBytes...)
		streamed = append(streamed, cp)
	}
	p := core.DefaultParams()
	alloc, err := core.AllocateGreedy(team(), core.RequiredBps(trueCapBps, p), p)
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.RunMeasurement(context.Background(), "liar", alloc, p.SlotSeconds, sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != p.SlotSeconds {
		t.Fatalf("streamed %d samples, want %d", len(streamed), p.SlotSeconds)
	}
	for _, s := range streamed {
		for i := range s.MeasBytes {
			if math.Abs(s.MeasBytes[i]-data.MeasBytes[i][s.Second]) > 1e-9 {
				t.Fatalf("second %d measurer %d: stream %.1f vs record %.1f", s.Second, i, s.MeasBytes[i], data.MeasBytes[i][s.Second])
			}
		}
		if math.Abs(s.NormBytes-data.NormBytes[s.Second]) > 1e-9 {
			t.Fatalf("second %d: stream norm %.1f vs record %.1f", s.Second, s.NormBytes, data.NormBytes[s.Second])
		}
	}
}
