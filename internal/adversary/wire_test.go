package adversary

import (
	"context"
	"net"
	"testing"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/wire"
)

// TestInflateOverWireBackend pins the tentpole claim that the adversary
// wrapper operates at the core.Backend boundary: the same Inflate attack
// that rewrites simulated slots rewrites a real wire measurement over
// loopback TCP, and the same r-ratio clamp bounds the damage when the
// data is aggregated. Real-time slot; skipped with -short like the other
// wall-clock wire tests.
func TestInflateOverWireBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time wire measurement slot")
	}
	p := core.DefaultParams()
	p.SlotSeconds = 2

	id, err := wire.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	tgt := wire.NewTarget(wire.TargetConfig{}) // unlimited echo rate
	tgt.Authorize(id.Pub)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go tgt.Serve(l)
	defer tgt.Close()
	addr := l.Addr().String()

	inner := &wire.Backend{
		Members: []wire.Member{{
			Identity: id,
			Dial: func(string) wire.Dialer {
				return func() (net.Conn, error) { return net.Dial("tcp", addr) }
			},
		}},
		Seed: 1,
	}
	b := New(inner, "bw0", 1)
	b.SetAttack("relay", Inflate{Factor: 50})

	alloc := core.Allocation{
		PerMeasurerBps: []float64{32e6},
		Processes:      []int{1},
		SocketsPer:     []int{2},
		TotalBps:       32e6,
	}
	data, err := b.RunMeasurement(context.Background(), "relay", alloc, p.SlotSeconds, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := core.Aggregate(data, p.Ratio)
	if err != nil {
		t.Fatal(err)
	}
	// The wire protocol carries no in-band normal-traffic report, so the
	// lie is the only normal-traffic claim: every second must have been
	// clamped, and the estimate must sit at exactly the 1/(1-r) bound
	// over what the measurer verifiably received.
	if agg.ClampedSeconds != p.SlotSeconds {
		t.Fatalf("clamped %d of %d seconds", agg.ClampedSeconds, p.SlotSeconds)
	}
	bound := core.RatioClampBound(agg.MeasOnlyMedian, p.Ratio)
	if agg.EstimateBytesPerSec > bound*(1+1e-9) {
		t.Fatalf("estimate %.0f exceeds the 1/(1-r) bound %.0f over verified bytes", agg.EstimateBytesPerSec, bound)
	}
	if ratio := agg.EstimateBytesPerSec / agg.MeasOnlyMedian; ratio < 1.2 {
		t.Fatalf("lie gained only %.3fx over verified traffic, want ~%.2fx (the clamp ceiling)", ratio, 1/(1-p.Ratio))
	}
}

// TestEchoCheatOverWireBackendStreams checks the wrapper's streamed
// samples over a real socket agree with the final record (the contract
// the early-abort watcher depends on).
func TestEchoCheatOverWireBackendStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time wire measurement slot")
	}
	id, err := wire.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	tgt := wire.NewTarget(wire.TargetConfig{})
	tgt.Authorize(id.Pub)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go tgt.Serve(l)
	defer tgt.Close()
	addr := l.Addr().String()

	inner := &wire.Backend{
		Members: []wire.Member{{
			Identity: id,
			Dial: func(string) wire.Dialer {
				return func() (net.Conn, error) { return net.Dial("tcp", addr) }
			},
		}},
		Seed: 2,
	}
	b := New(inner, "bw0", 2)
	b.SetAttack("relay", EchoCheat{Boost: 2, CheckProb: 0}) // unchecked team: boost sails through

	var streamed []core.Sample
	sink := func(s core.Sample) {
		cp := core.Sample{Second: s.Second, NormBytes: s.NormBytes}
		cp.MeasBytes = append([]float64(nil), s.MeasBytes...)
		streamed = append(streamed, cp)
	}
	alloc := core.Allocation{
		PerMeasurerBps: []float64{16e6},
		Processes:      []int{1},
		SocketsPer:     []int{1},
		TotalBps:       16e6,
	}
	deadline, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	data, err := b.RunMeasurement(deadline, "relay", alloc, 2, sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) == 0 {
		t.Fatal("no samples streamed")
	}
	for _, s := range streamed {
		for i := range s.MeasBytes {
			if got := data.MeasBytes[i][s.Second]; got != s.MeasBytes[i] {
				t.Fatalf("second %d: stream %.0f vs record %.0f", s.Second, s.MeasBytes[i], got)
			}
		}
	}
	var total float64
	for _, s := range streamed {
		for _, v := range s.MeasBytes {
			total += v
		}
	}
	if total == 0 {
		t.Fatalf("boosted wire slot echoed nothing: %+v", streamed)
	}
}
