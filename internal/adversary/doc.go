// Package adversary implements the §5 malicious-relay behaviors as live
// attacks on the measurement pipeline. Where core.SimBackend's
// TargetBehavior bakes a couple of adversarial modes into the simulation
// itself, this package attacks at the sample-stream boundary instead: an
// adversary.Backend wraps any core.Backend — the simulation backend, the
// wire backend over real sockets, or a benchmark's instant backend — and
// rewrites the per-second measurement data a compromised relay would
// rewrite, without the inner backend's cooperation.
//
// That boundary is exactly the trust boundary the paper analyzes: a
// malicious relay controls what it echoes and what it reports, but not
// what the measurers verifiably received or the BWAuth-side aggregation.
// Every attack here therefore transforms (per-measurer echoed bytes,
// relay-reported normal bytes) per second, and the §5 defenses in
// internal/core — the r-ratio clamp, the 1/(1−r) estimate invariant,
// echo verification, per-team cross-checks, cross-BWAuth medians — are
// what bound the damage. The adversary-matrix experiment
// (internal/experiments) runs every attack against FlashFlow and the
// TorFlow/PeerFlow/EigenSpeed baselines and checks the bounds hold: §5's
// analysis caps a malicious relay's inflation at 1/(1−r) ≈ 1.33 for the
// paper's r = 0.25, and CI fails if any attack beats that bound against
// FlashFlow while the legacy estimators are shown inflating without it.
package adversary
