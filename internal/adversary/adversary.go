package adversary

import (
	"context"
	"hash/fnv"
	"math/rand"
	"sync"

	"flashflow/internal/core"
	"flashflow/internal/metrics"
)

// Attack is one malicious-relay behavior. NewSlot is called once per
// measurement slot with the slot's parameters and a deterministic RNG;
// the returned Slot rewrites the slot's seconds.
type Attack interface {
	// Name identifies the attack in reports and counters.
	Name() string
	// NewSlot starts one slot's worth of adversarial state. auth names
	// the BWAuth the measuring backend belongs to (selective attacks
	// behave differently per team); rng is seeded deterministically per
	// (backend, target, slot sequence).
	NewSlot(auth, target string, alloc core.Allocation, seconds int, rng *rand.Rand) Slot
}

// Slot rewrites one measurement slot second by second.
//
// Transform is called with second indexes in nondecreasing order, and may
// be called twice for the same second (once while the slot streams, once
// when the final MeasurementData is rewritten): implementations must be
// deterministic per second — memoize random draws the first time a second
// is seen (see the noise helper) so both calls produce identical bytes.
type Slot interface {
	// Transform mutates one second's per-measurer echoed bytes and the
	// relay's normal-traffic report in place. Returning caught=true
	// means the probabilistic echo check detected forged cells this
	// second: the backend fails the measurement exactly as an honest
	// backend would (§4.1 discards it).
	Transform(second int, measBytes []float64, normBytes *float64) (caught bool)
}

// Backend wraps an inner core.Backend and applies per-target attacks at
// the sample-stream boundary. Targets without a configured attack pass
// through untouched. Safe for concurrent RunMeasurement calls.
type Backend struct {
	inner core.Backend
	// auth names the BWAuth this backend measures for; selective attacks
	// key on it.
	auth string
	seed int64
	// Counters, when set, receives adversary_slots_attacked and
	// adversary_slots_caught so harnesses can see the attack surface.
	Counters *metrics.Counters

	mu      sync.Mutex
	attacks map[string]Attack
	slotSeq map[string]int64
}

var _ core.Backend = (*Backend)(nil)

// New wraps inner for the named BWAuth with a deterministic seed.
func New(inner core.Backend, auth string, seed int64) *Backend {
	return &Backend{
		inner:   inner,
		auth:    auth,
		seed:    seed,
		attacks: make(map[string]Attack),
		slotSeq: make(map[string]int64),
	}
}

// SetAttack arms an attack for one target relay; a nil attack disarms it.
func (b *Backend) SetAttack(target string, a Attack) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if a == nil {
		delete(b.attacks, target)
		return
	}
	b.attacks[target] = a
}

// slotRNG derives the deterministic per-slot RNG: seed ‖ target ‖ slot
// sequence number, so repeated runs of the same scenario draw identical
// noise regardless of which other targets were measured in between.
func (b *Backend) slotRNG(target string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(target))
	seq := b.slotSeq[target]
	b.slotSeq[target] = seq + 1
	const mix = uint64(0x9e3779b97f4a7c15)
	return rand.New(rand.NewSource(b.seed ^ int64(h.Sum64()) ^ int64(uint64(seq+1)*mix)))
}

// RunMeasurement implements core.Backend. For attacked targets it
// installs its own sample sink, rewriting each streamed second before the
// caller's sink (the §4.2 early-abort watcher, the coordinator's progress
// tee) sees it, and rewrites the returned MeasurementData identically —
// the stream and the authoritative record always agree, exactly as they
// do for an honest backend. A slot caught by echo verification is
// cancelled promptly (the inner backend tears it down like any cancelled
// slot) and returned truncated with Failed set, matching honest-backend
// failure semantics.
func (b *Backend) RunMeasurement(ctx context.Context, target string, alloc core.Allocation, seconds int, sink core.SampleSink) (core.MeasurementData, error) {
	b.mu.Lock()
	atk := b.attacks[target]
	var rng *rand.Rand
	if atk != nil {
		rng = b.slotRNG(target)
	}
	b.mu.Unlock()
	if atk == nil {
		return b.inner.RunMeasurement(ctx, target, alloc, seconds, sink)
	}
	if b.Counters != nil {
		b.Counters.Inc("adversary_slots_attacked")
	}

	slot := atk.NewSlot(b.auth, target, alloc, seconds, rng)
	slotCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// caughtAt is the second at which echo verification caught the relay,
	// -1 while it evades. Written only by the inner backend's streaming
	// goroutine, read after RunMeasurement returns (the backend has
	// stopped streaming by then).
	caughtAt := -1
	row := make([]float64, 0, len(alloc.PerMeasurerBps))
	tee := func(s core.Sample) {
		if caughtAt >= 0 {
			return
		}
		// Transform a copy: Sample.MeasBytes may alias backend-owned (or
		// even authoritative) storage, and the contract says sinks must
		// not mutate it.
		row = append(row[:0], s.MeasBytes...)
		norm := s.NormBytes
		if slot.Transform(s.Second, row, &norm) {
			caughtAt = s.Second
			cancel()
			return
		}
		if sink != nil {
			sink(core.Sample{Second: s.Second, MeasBytes: row, NormBytes: norm})
		}
	}

	data, err := b.inner.RunMeasurement(slotCtx, target, alloc, seconds, tee)

	// Rewrite the authoritative record with the same per-second
	// transforms the stream saw (Slot memoizes its draws, so seconds
	// already streamed transform identically; seconds the inner backend
	// never streamed — a nil-sink inner path — draw fresh in order).
	n := 0
	if len(data.MeasBytes) > 0 {
		n = len(data.MeasBytes[0])
	}
	scratch := make([]float64, len(data.MeasBytes))
	for j := 0; j < n; j++ {
		for i := range data.MeasBytes {
			scratch[i] = data.MeasBytes[i][j]
		}
		var norm float64
		if j < len(data.NormBytes) {
			norm = data.NormBytes[j]
		}
		caught := slot.Transform(j, scratch, &norm)
		for i := range data.MeasBytes {
			data.MeasBytes[i][j] = scratch[i]
		}
		if j < len(data.NormBytes) {
			data.NormBytes[j] = norm
		}
		if caught {
			if caughtAt < 0 || j < caughtAt {
				caughtAt = j
			}
			break
		}
		if caughtAt >= 0 && j >= caughtAt {
			break
		}
	}

	if caughtAt >= 0 {
		// The forging relay was caught: the measurement fails exactly as
		// an honest backend reports it (§4.1) — truncated at the caught
		// second, Failed set, no error unless the caller itself
		// cancelled.
		if b.Counters != nil {
			b.Counters.Inc("adversary_slots_caught")
		}
		data = data.Truncate(caughtAt + 1)
		data.Failed = true
		if ctx.Err() != nil {
			return data, ctx.Err()
		}
		return data, nil
	}
	return data, err
}
