package flashflow

import (
	"testing"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/experiments"
	"flashflow/internal/metrics"
	"flashflow/internal/netsim"
	"flashflow/internal/relay"
	"flashflow/internal/stats"
)

// benchExperiment regenerates one paper artifact per iteration and reports
// its headline metrics. Every table and figure in the paper's evaluation
// has a benchmark below; run a single one with
//
//	go test -bench=BenchmarkFig6 -benchmem
//
// and regenerate the full-size output with
//
//	go run ./cmd/experiments -exp fig6
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Lines) == 0 {
			b.Fatal("experiment produced no output")
		}
		if i == b.N-1 {
			for k, v := range rep.Metrics {
				b.ReportMetric(v, k)
			}
		}
	}
}

// §3 analysis (Tor metrics archive).
func BenchmarkFig1RelayCapacityError(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2NetworkCapacityError(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig3RelayWeightError(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4NetworkWeightError(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5SpeedTest(b *testing.B)            { benchExperiment(b, "fig5") }
func BenchmarkFig10Variation(b *testing.B)           { benchExperiment(b, "fig10") }

// §6 Internet experiments.
func BenchmarkTable1HostBandwidth(b *testing.B)      { benchExperiment(b, "tab1") }
func BenchmarkTable3PairwiseIperf(b *testing.B)      { benchExperiment(b, "tab3") }
func BenchmarkFig11TorProcessingLimits(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12KernelTuning(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13TuningRatio(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFig14SocketSweep(b *testing.B)         { benchExperiment(b, "fig14") }
func BenchmarkFig15MultiplierSweep(b *testing.B)     { benchExperiment(b, "fig15") }
func BenchmarkFig16DurationSweep(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkFig6AccuracyNoBackground(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig7BackgroundTraffic(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkTable4Concurrent(b *testing.B)         { benchExperiment(b, "tab4") }

// §7 simulation experiments and §5/Table 2 security numbers.
func BenchmarkSchedNetworkMeasurement(b *testing.B) { benchExperiment(b, "sched") }
func BenchmarkFig8ShadowError(b *testing.B)         { benchExperiment(b, "fig8") }
func BenchmarkFig9ShadowPerformance(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkTable2AttackAdvantage(b *testing.B)   { benchExperiment(b, "tab2") }
func BenchmarkSecurityDetection(b *testing.B)       { benchExperiment(b, "security") }
func BenchmarkAdversaryMatrix(b *testing.B)         { benchExperiment(b, "adversary-matrix") }

// Ablations of the design choices (DESIGN.md §6) and paper extensions.
func BenchmarkAblationRatio(b *testing.B)    { benchExperiment(b, "ablation-ratio") }
func BenchmarkAblationCheck(b *testing.B)    { benchExperiment(b, "ablation-check") }
func BenchmarkAblationSchedule(b *testing.B) { benchExperiment(b, "ablation-schedule") }
func BenchmarkAblationDuration(b *testing.B) { benchExperiment(b, "ablation-duration") }
func BenchmarkAblationDynamic(b *testing.B)  { benchExperiment(b, "ablation-dynamic") }
func BenchmarkAblationFamily(b *testing.B)   { benchExperiment(b, "ablation-family") }

// Micro-benchmarks of the hot paths underlying the experiments.

func BenchmarkAggregate30s4Measurers(b *testing.B) {
	data := core.MeasurementData{
		MeasBytes: make([][]float64, 4),
		NormBytes: make([]float64, 30),
	}
	for i := range data.MeasBytes {
		data.MeasBytes[i] = make([]float64, 30)
		for j := range data.MeasBytes[i] {
			data.MeasBytes[i][j] = float64(i*31 + j)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Aggregate(data, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocateGreedy(b *testing.B) {
	team := []*core.Measurer{
		{Name: "a", CapacityBps: 946e6, Cores: 8},
		{Name: "b", CapacityBps: 941e6, Cores: 12},
		{Name: "c", CapacityBps: 1076e6, Cores: 2},
		{Name: "d", CapacityBps: 1611e6, Cores: 2},
	}
	p := core.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AllocateGreedy(team, 2e9, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildSchedule1000Relays(b *testing.B) {
	relays := make([]core.RelayEstimate, 1000)
	for i := range relays {
		relays[i] = core.RelayEstimate{Name: string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10)) + string(rune('0'+(i/100)%10)), EstimateBps: 50e6}
	}
	caps := []float64{3e9, 3e9, 3e9}
	p := core.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildSchedule([]byte("seed"), relays, caps, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetsimAllocate(b *testing.B) {
	n := netsim.New(time.Second)
	resources := make([]*netsim.Resource, 20)
	for i := range resources {
		resources[i] = netsim.NewResource("r", 1e9)
	}
	for i := 0; i < 200; i++ {
		n.AddFlow("f", []*netsim.Resource{resources[i%20], resources[(i+7)%20]}, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Allocate()
	}
}

func BenchmarkRelayStep(b *testing.B) {
	r := relay.New(relay.Config{Name: "r", TorCapBps: 500e6, RateBps: 400e6, BurstBits: 400e6})
	r.SetMeasuring(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Step(time.Second, 1e9, 50e6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObservedBandwidthRecord(b *testing.B) {
	o := relay.NewObservedBandwidth()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Record(time.Duration(i)*time.Second, float64(i%1000)*1e3)
	}
}

func BenchmarkArchiveGeneration(b *testing.B) {
	p := metrics.DefaultArchiveParams()
	p.NumRelays = 50
	p.Span = 90 * 24 * time.Hour
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.GenerateArchive(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMedian10k(b *testing.B) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64((i * 7919) % 10007)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Median(xs)
	}
}
