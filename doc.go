// Package flashflow is a from-scratch Go reproduction of "FlashFlow: A
// Secure Speed Test for Tor" (Traudt, Jansen, Johnson; ICDCS 2021).
//
// The library lives under internal/: the FlashFlow measurement system
// (internal/core), the wire protocol over real connections
// (internal/wire), the continuous measurement coordinator that runs
// FlashFlow as a long-lived service over the whole relay population
// (internal/coord, served by cmd/coordd), and every substrate the paper
// depends on — a Tor-like relay stack, a flow-level network simulator, a
// directory-authority substrate, the TorFlow baseline, the §3 metrics
// analysis, and a Shadow-like full-network simulation. See DESIGN.md for
// the system inventory and the per-experiment index, EXPERIMENTS.md for
// paper-vs-measured results, and bench_test.go for the harness that
// regenerates every table and figure.
package flashflow
