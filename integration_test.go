package flashflow

// Integration tests crossing module boundaries: a full FlashFlow
// measurement period from shared-randomness generation through scheduling,
// measurement by multiple BWAuths, DirAuth aggregation, and finally load
// balancing in the Shadow-like network simulation — the complete §4
// pipeline feeding the §7 evaluation.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/dirauth"
	"flashflow/internal/relay"
	"flashflow/internal/shadow"
	"flashflow/internal/stats"
)

func integrationPaths() []core.PathModel {
	return []core.PathModel{
		{RTT: 40 * time.Millisecond, LinkBps: 1e9, BiasSigma: 0.05, JitterSigma: 0.03},
		{RTT: 90 * time.Millisecond, LinkBps: 1e9, BiasSigma: 0.05, JitterSigma: 0.03},
		{RTT: 140 * time.Millisecond, LinkBps: 1e9, BiasSigma: 0.05, JitterSigma: 0.03},
	}
}

func integrationTeam() []*core.Measurer {
	return []*core.Measurer{
		{Name: "m1", CapacityBps: 1e9, Cores: 4},
		{Name: "m2", CapacityBps: 1e9, Cores: 4},
		{Name: "m3", CapacityBps: 1e9, Cores: 4},
	}
}

// TestFullPeriodPipeline drives the complete pipeline for one measurement
// period with three BWAuths and a small relay population.
func TestFullPeriodPipeline(t *testing.T) {
	p := core.DefaultParams()
	relays := shadow.SampleNetwork(25, 2e9, 17)

	// Phase 1: the BWAuths run the shared-randomness protocol.
	var commits []core.Commitment
	var reveals []core.Reveal
	for i := 0; i < 3; i++ {
		r, err := core.NewRandomReveal(fmt.Sprintf("bw%d", i))
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, r.Commit())
		reveals = append(reveals, r)
	}
	shared, err := core.SharedRandomness(commits, reveals)
	if err != nil {
		t.Fatal(err)
	}
	seed := core.PeriodSeed(shared, 1)

	// Phase 2: every BWAuth independently derives the same schedule.
	ests := make([]core.RelayEstimate, len(relays))
	for i, r := range relays {
		ests[i] = core.RelayEstimate{Name: r.Name, EstimateBps: r.AdvertisedBps}
	}
	teamCaps := []float64{3e9, 3e9, 3e9}
	sched1, err := core.BuildSchedule(seed, ests, teamCaps, p)
	if err != nil {
		t.Fatal(err)
	}
	sched2, err := core.BuildSchedule(seed, ests, teamCaps, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range relays {
		for b := 0; b < 3; b++ {
			s1, s2 := sched1.SlotOf(b, r.Name), sched2.SlotOf(b, r.Name)
			if s1 != s2 {
				t.Fatalf("schedule divergence for %s at bwauth %d", r.Name, b)
			}
			if s1 < 0 {
				t.Fatalf("relay %s unscheduled at bwauth %d", r.Name, b)
			}
		}
	}

	// Phase 3: each BWAuth measures every relay with its own team and
	// independent backend noise.
	names := make([]string, len(relays))
	auths := make([]*core.BWAuth, 3)
	for b := range auths {
		backend := core.NewSimBackend(integrationPaths(), int64(100+b))
		for i, r := range relays {
			names[i] = r.Name
			backend.AddTarget(r.Name, &core.SimTarget{
				Relay:    relay.New(relay.Config{Name: r.Name, TorCapBps: r.CapacityBps}),
				LinkBps:  1e9,
				Behavior: core.BehaviorHonest,
			})
		}
		auths[b] = core.NewBWAuth(fmt.Sprintf("bw%d", b), integrationTeam(), backend, p)
		for i, r := range relays {
			auths[b].SetEstimate(names[i], r.AdvertisedBps)
		}
	}
	period := core.RunPeriod(context.Background(), auths, names)
	if len(period.Errors) != 0 {
		t.Fatalf("measurement errors: %v", period.Errors)
	}

	// Phase 4: DirAuth aggregation into a consensus.
	files := make([]*dirauth.BandwidthFile, len(auths))
	for i, a := range auths {
		files[i] = a.BandwidthFile(0)
	}
	consensus, err := dirauth.AggregateMedian(time.Hour, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(consensus.Relays) != len(relays) {
		t.Fatalf("consensus covers %d relays, want %d", len(consensus.Relays), len(relays))
	}

	// The consensus weights should track true capacity much better than
	// the advertised bandwidths did.
	caps := make([]float64, len(relays))
	advs := make([]float64, len(relays))
	weights := make([]float64, len(relays))
	for i, r := range relays {
		caps[i] = r.CapacityBps
		advs[i] = r.AdvertisedBps
		e, ok := consensus.Lookup(r.Name)
		if !ok {
			t.Fatalf("relay %s missing from consensus", r.Name)
		}
		weights[i] = e.WeightBps
	}
	nweFlashFlow := stats.TotalVariationDistance(stats.Normalize(weights), stats.Normalize(caps))
	nweAdvertised := stats.TotalVariationDistance(stats.Normalize(advs), stats.Normalize(caps))
	if nweFlashFlow >= nweAdvertised {
		t.Fatalf("FlashFlow weights (NWE %.3f) should beat advertised bandwidths (NWE %.3f)",
			nweFlashFlow, nweAdvertised)
	}
	if nweFlashFlow > 0.10 {
		t.Fatalf("FlashFlow consensus NWE too high: %.3f", nweFlashFlow)
	}

	// Phase 5: the consensus balances load in the network simulation.
	cfg := shadow.DefaultConfig()
	cfg.Duration = time.Minute
	cfg.Clients = shadow.ClientsForUtilization(relays, cfg, 0.3)
	res, err := shadow.Run(cfg, relays, weights)
	if err != nil {
		t.Fatal(err)
	}
	if res.BenchTransfers == 0 {
		t.Fatal("no benchmark transfers completed")
	}
	if res.TimeoutRate > 0.2 {
		t.Fatalf("timeout rate under FlashFlow weights: %v", res.TimeoutRate)
	}
}

// TestPeriodWithAdversaries verifies the period pipeline holds its §5
// properties with misbehaving relays in the population.
func TestPeriodWithAdversaries(t *testing.T) {
	p := core.DefaultParams()
	backendFor := func(seed int64) *core.SimBackend {
		b := core.NewSimBackend(integrationPaths(), seed)
		b.AddTarget("honest", &core.SimTarget{
			Relay:    relay.New(relay.Config{Name: "honest", TorCapBps: 200e6}),
			LinkBps:  1e9,
			Behavior: core.BehaviorHonest,
		})
		b.AddTarget("liar", &core.SimTarget{
			Relay:    relay.New(relay.Config{Name: "liar", TorCapBps: 200e6}),
			LinkBps:  1e9,
			Behavior: core.BehaviorInflateNormal,
		})
		b.AddTarget("forger", &core.SimTarget{
			Relay:      relay.New(relay.Config{Name: "forger", TorCapBps: 200e6}),
			LinkBps:    1e9,
			Behavior:   core.BehaviorForgeEcho,
			ForgeBoost: 2,
		})
		return b
	}
	auths := make([]*core.BWAuth, 3)
	for b := range auths {
		auths[b] = core.NewBWAuth(fmt.Sprintf("bw%d", b), integrationTeam(), backendFor(int64(b)), p)
		for _, n := range []string{"honest", "liar", "forger"} {
			auths[b].SetEstimate(n, 200e6)
		}
	}
	period := core.RunPeriod(context.Background(), auths, []string{"honest", "liar", "forger"})

	// The forger fails at every BWAuth.
	forgerErrors := 0
	for key := range period.Errors {
		if key == "bw0/forger" || key == "bw1/forger" || key == "bw2/forger" {
			forgerErrors++
		}
	}
	if forgerErrors != 3 {
		t.Fatalf("forger should fail at all 3 BWAuths, failed at %d", forgerErrors)
	}
	// The honest relay's median is accurate.
	honest := period.MedianEstimates["honest"]
	if honest < 160e6 || honest > 215e6 {
		t.Fatalf("honest median estimate: %v", honest)
	}
	// The liar is clamped at ≤ 1.33× (+ε2 headroom).
	liar := period.MedianEstimates["liar"]
	if liar > 200e6*p.MaxInflation()*(1+p.Eps2) {
		t.Fatalf("liar median estimate above the §5 bound: %v", liar)
	}
}
