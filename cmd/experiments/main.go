// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	go run ./cmd/experiments -list
//	go run ./cmd/experiments -exp fig6
//	go run ./cmd/experiments -all [-quick]
//
// The adversary-matrix subcommand runs the live attack × estimator
// robustness matrix and emits its deterministic JSON report (the one the
// nightly CI gate consumes):
//
//	go run ./cmd/experiments adversary-matrix -seed 1
//	go run ./cmd/experiments adversary-matrix -seed 1 -out ADVERSARY_matrix.json -max-flashflow 1.4
//
// With -max-flashflow > 0 the command exits nonzero when FlashFlow's
// measured attack advantage exceeds the bound on any attack — the §5
// analytical limit 1/(1−r) = 1.33 plus noise margin.
package main

import (
	"flag"
	"fmt"
	"os"

	"flashflow/internal/experiments"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "adversary-matrix" {
		if err := runMatrix(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runMatrix implements the adversary-matrix subcommand.
func runMatrix(args []string) error {
	fs := flag.NewFlagSet("adversary-matrix", flag.ExitOnError)
	var (
		seed  = fs.Int64("seed", 1, "matrix RNG seed; equal seeds produce identical reports")
		quick = fs.Bool("quick", false, "smaller honest populations for smoke runs")
		out   = fs.String("out", "-", "report path (- for stdout)")
		gate  = fs.Float64("max-flashflow", 0, "fail (exit 1) if FlashFlow's advantage exceeds this on any attack (0 = no gate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := experiments.AdversaryMatrix(experiments.MatrixOptions{Seed: *seed, Quick: *quick})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Println("report:", *out)
	}
	if *gate > 0 && rep.FlashFlowMaxAdvantage > *gate {
		return fmt.Errorf("adversary-matrix: FlashFlow attack advantage %.3fx exceeds the %.2fx gate (analytical bound %.2fx)",
			rep.FlashFlowMaxAdvantage, *gate, rep.InflationBound)
	}
	if *gate > 0 {
		fmt.Printf("gate: ok (FlashFlow worst case %.3fx <= %.2fx)\n", rep.FlashFlowMaxAdvantage, *gate)
	}
	return nil
}

func run() error {
	var (
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		quick = flag.Bool("quick", false, "use reduced configurations")
	)
	flag.Parse()

	switch {
	case *list:
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-9s %s\n", id, title)
		}
		return nil
	case *all:
		for _, id := range experiments.IDs() {
			if err := printOne(id, *quick); err != nil {
				return err
			}
		}
		return nil
	case *exp != "":
		return printOne(*exp, *quick)
	default:
		flag.Usage()
		return fmt.Errorf("specify -exp <id>, -all, or -list")
	}
}

func printOne(id string, quick bool) error {
	rep, err := experiments.Run(id, quick)
	if err != nil {
		return err
	}
	fmt.Printf("== %s — %s ==\n", rep.ID, rep.Title)
	for _, line := range rep.Lines {
		fmt.Println(line)
	}
	fmt.Println()
	return nil
}
