// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	go run ./cmd/experiments -list
//	go run ./cmd/experiments -exp fig6
//	go run ./cmd/experiments -all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"flashflow/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		quick = flag.Bool("quick", false, "use reduced configurations")
	)
	flag.Parse()

	switch {
	case *list:
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-9s %s\n", id, title)
		}
		return nil
	case *all:
		for _, id := range experiments.IDs() {
			if err := printOne(id, *quick); err != nil {
				return err
			}
		}
		return nil
	case *exp != "":
		return printOne(*exp, *quick)
	default:
		flag.Usage()
		return fmt.Errorf("specify -exp <id>, -all, or -list")
	}
}

func printOne(id string, quick bool) error {
	rep, err := experiments.Run(id, quick)
	if err != nil {
		return err
	}
	fmt.Printf("== %s — %s ==\n", rep.ID, rep.Title)
	for _, line := range rep.Lines {
		fmt.Println(line)
	}
	fmt.Println()
	return nil
}
