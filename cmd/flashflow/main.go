// Command flashflow runs a live FlashFlow measurement against an
// in-process target relay over real localhost TCP connections — a
// self-contained demonstration of the wire protocol and the §4
// measurement pipeline.
//
// Usage:
//
//	go run ./cmd/flashflow [-rate 20] [-seconds 5] [-measurers 2] [-sockets 16]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		rateMbit  = flag.Float64("rate", 20, "target relay capacity in Mbit/s")
		seconds   = flag.Int("seconds", 5, "measurement slot length t")
		measurers = flag.Int("measurers", 2, "measurement team size")
		sockets   = flag.Int("sockets", 16, "total measurement sockets s")
		ratio     = flag.Float64("ratio", 0.25, "normal-traffic ratio r")
		corrupt   = flag.Bool("corrupt", false, "make the target forge echoes (detection demo)")
	)
	flag.Parse()

	rate := *rateMbit * 1e6
	target := wire.NewTarget(wire.TargetConfig{RateBps: rate, Corrupt: *corrupt})
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer listener.Close()
	go target.Serve(listener)
	addr := listener.Addr().String()

	members := make([]wire.Member, *measurers)
	team := make([]*core.Measurer, *measurers)
	for i := range members {
		id, err := wire.NewIdentity()
		if err != nil {
			return err
		}
		target.Authorize(id.Pub)
		members[i] = wire.Member{
			Identity: id,
			Dial: func(string) wire.Dialer {
				return func() (net.Conn, error) { return net.Dial("tcp", addr) }
			},
		}
		team[i] = &core.Measurer{Name: fmt.Sprintf("m%d", i), CapacityBps: rate * 4, Cores: 2}
	}

	p := core.DefaultParams()
	p.SlotSeconds = *seconds
	p.Sockets = *sockets
	p.Ratio = *ratio
	if err := p.Validate(); err != nil {
		return err
	}
	// Check aggressively in the demo so a corrupt target is caught within
	// a short slot.
	checkProb := p.CheckProb
	if *corrupt {
		checkProb = 0.1
	}
	backend := &wire.Backend{Members: members, CheckProb: checkProb, Seed: time.Now().UnixNano()}

	fmt.Printf("target %s at %.0f Mbit/s; team of %d, s=%d, t=%ds, f=%.2f\n",
		addr, rate/1e6, *measurers, p.Sockets, p.SlotSeconds, p.ExcessFactor())
	out, err := core.MeasureRelay(backend, team, "target", rate, p)
	if err != nil {
		return fmt.Errorf("measurement: %w", err)
	}
	for i, a := range out.Attempts {
		fmt.Printf("attempt %d: alloc %.1f Mbit/s → %.2f Mbit/s (accepted=%v)\n",
			i+1, a.AllocatedBps/1e6, a.EstimateBps/1e6, a.Accepted)
	}
	fmt.Printf("estimate %.2f Mbit/s (%.1f%% of configured rate), conclusive=%v\n",
		out.EstimateBps/1e6, out.EstimateBps/rate*100, out.Conclusive)
	return nil
}
