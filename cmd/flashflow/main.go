// Command flashflow runs a live FlashFlow measurement against an
// in-process target relay over real localhost TCP connections — a
// self-contained demonstration of the wire protocol and the §4
// measurement pipeline.
//
// SIGINT/SIGTERM cancel the run instead of killing the process
// mid-measurement: the in-flight slot is torn down promptly and the
// partial outcome — every attempt completed or salvaged before the
// signal — is printed before exiting.
//
// Usage:
//
//	go run ./cmd/flashflow [-rate 20] [-seconds 5] [-measurers 2] [-sockets 16] [-transport tcp|udp]
//
// With -transport udp the measurement cells ride loopback datagrams
// (TCP keeps the control plane) and the summary reports the datagram
// plane's loss accounting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/wire"
)

func main() {
	if err := run(); err != nil {
		if errors.Is(err, context.Canceled) {
			os.Exit(130) // interrupted, partial outcome already printed
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		rateMbit  = flag.Float64("rate", 20, "target relay capacity in Mbit/s")
		seconds   = flag.Int("seconds", 5, "measurement slot length t")
		measurers = flag.Int("measurers", 2, "measurement team size")
		sockets   = flag.Int("sockets", 16, "total measurement sockets s")
		ratio     = flag.Float64("ratio", 0.25, "normal-traffic ratio r")
		corrupt   = flag.Bool("corrupt", false, "make the target forge echoes (detection demo)")
		transport = flag.String("transport", "tcp", "data plane for measurement cells: tcp or udp")
	)
	flag.Parse()
	if *transport != "tcp" && *transport != "udp" {
		return fmt.Errorf("unknown -transport %q (want tcp or udp)", *transport)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rate := *rateMbit * 1e6
	target := wire.NewTarget(wire.TargetConfig{RateBps: rate, Corrupt: *corrupt})
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer listener.Close()
	go target.Serve(listener)
	addr := listener.Addr().String()

	var dialData func(string) wire.Dialer
	if *transport == "udp" {
		uc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return err
		}
		defer uc.Close()
		go target.ServeUDP(wire.NewUDPDatagramConn(uc))
		udpAddr := uc.LocalAddr().String()
		dialData = func(string) wire.Dialer {
			return func() (net.Conn, error) { return net.Dial("udp", udpAddr) }
		}
	}

	members := make([]wire.Member, *measurers)
	team := make([]*core.Measurer, *measurers)
	for i := range members {
		id, err := wire.NewIdentity()
		if err != nil {
			return err
		}
		target.Authorize(id.Pub)
		members[i] = wire.Member{
			Identity: id,
			Dial: func(string) wire.Dialer {
				return func() (net.Conn, error) { return net.Dial("tcp", addr) }
			},
			DialData: dialData,
		}
		team[i] = &core.Measurer{Name: fmt.Sprintf("m%d", i), CapacityBps: rate * 4, Cores: 2}
	}

	p := core.DefaultParams()
	p.SlotSeconds = *seconds
	p.Sockets = *sockets
	p.Ratio = *ratio
	if err := p.Validate(); err != nil {
		return err
	}
	// Check aggressively in the demo so a corrupt target is caught within
	// a short slot.
	checkProb := p.CheckProb
	if *corrupt {
		checkProb = 0.1
	}
	backend := &wire.Backend{Members: members, CheckProb: checkProb, Seed: time.Now().UnixNano()}

	fmt.Printf("target %s at %.0f Mbit/s over %s; team of %d, s=%d, t=%ds, f=%.2f (ctrl-C cancels cleanly)\n",
		addr, rate/1e6, *transport, *measurers, p.Sockets, p.SlotSeconds, p.ExcessFactor())
	out, err := core.MeasureRelay(ctx, backend, team, "target", rate, p)
	printAttempts(out)
	if errors.Is(err, context.Canceled) {
		// The signal tore the in-flight slot down; the attempts above
		// include whatever partial seconds were salvaged from it.
		if out.EstimateBps > 0 {
			fmt.Printf("interrupted: partial estimate %.2f Mbit/s from %d attempt(s), %d slot-seconds (inconclusive)\n",
				out.EstimateBps/1e6, len(out.Attempts), out.SlotSecondsUsed())
		} else {
			fmt.Println("interrupted before any measurement second completed")
		}
		return err
	}
	if err != nil {
		return fmt.Errorf("measurement: %w", err)
	}
	fmt.Printf("estimate %.2f Mbit/s (%.1f%% of configured rate), conclusive=%v, %d slot-seconds\n",
		out.EstimateBps/1e6, out.EstimateBps/rate*100, out.Conclusive, out.SlotSecondsUsed())
	return nil
}

// printAttempts renders the doubling-loop attempts, marking early-aborted
// and partial slots with the seconds they actually consumed.
func printAttempts(out core.MeasureOutcome) {
	for i, a := range out.Attempts {
		note := ""
		if a.Aborted {
			note = fmt.Sprintf(" [aborted after %ds]", a.Seconds)
		} else if a.Seconds > 0 && !a.Accepted && !a.Aborted {
			note = fmt.Sprintf(" [%ds]", a.Seconds)
		}
		if a.SentCells > 0 {
			note += fmt.Sprintf(" [udp: %d/%d cells lost]", a.LostCells, a.SentCells)
		}
		fmt.Printf("attempt %d: alloc %.1f Mbit/s → %.2f Mbit/s (accepted=%v)%s\n",
			i+1, a.AllocatedBps/1e6, a.EstimateBps/1e6, a.Accepted, note)
	}
}
