package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPackageDocs(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "internal/good/doc.go"),
		"// Package good is documented.\npackage good\n")
	write(t, filepath.Join(root, "internal/good/extra.go"),
		"package good\n")
	write(t, filepath.Join(root, "internal/bad/bad.go"),
		"package bad\n")
	// A test-only doc comment must not count.
	write(t, filepath.Join(root, "internal/testdoc/code.go"),
		"package testdoc\n")
	write(t, filepath.Join(root, "internal/testdoc/code_test.go"),
		"// Package testdoc would be documented only in tests.\npackage testdoc\n")

	// Command packages are held to the same standard: a main.go doc
	// comment counts, a bare package clause does not.
	write(t, filepath.Join(root, "cmd/gooddaemon/main.go"),
		"// Command gooddaemon is documented.\npackage main\n")
	write(t, filepath.Join(root, "cmd/baddaemon/main.go"),
		"package main\n")

	var problems []string
	for _, tree := range []string{"internal", "cmd"} {
		p, err := checkPackageDocs(filepath.Join(root, tree))
		if err != nil {
			t.Fatal(err)
		}
		problems = append(problems, p...)
	}
	if len(problems) != 3 {
		t.Fatalf("got %d problems, want 3: %v", len(problems), problems)
	}
	for _, pkg := range []string{"bad", "testdoc"} {
		found := false
		for _, p := range problems {
			if strings.Contains(p, "package "+pkg+" has no package comment") {
				found = true
			}
		}
		if !found {
			t.Errorf("missing problem for package %s in %v", pkg, problems)
		}
	}
	found := false
	for _, p := range problems {
		if strings.Contains(p, "baddaemon") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing problem for cmd/baddaemon in %v", problems)
	}
}

func TestCheckMarkdownLinks(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "EXISTS.md"), "target\n")
	write(t, filepath.Join(root, "README.md"), strings.Join([]string{
		"[ok](EXISTS.md) and [anchored](EXISTS.md#section)",
		"[external](https://example.com/x.md) [anchor](#local)",
		"[broken](MISSING.md)",
		"![img](missing.png)",
	}, "\n"))

	problems, err := checkMarkdownLinks(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("got %d problems, want 2: %v", len(problems), problems)
	}
	for _, want := range []string{`"MISSING.md"`, `"missing.png"`} {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing problem for %s in %v", want, problems)
		}
	}
}

// TestRepoIsClean runs both checks against the real repository so the
// unit tests and the CI gate cannot drift apart.
func TestRepoIsClean(t *testing.T) {
	root := "../.."
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skip("repo root not found")
	}
	var pkgProblems []string
	for _, tree := range []string{"internal", "cmd"} {
		p, err := checkPackageDocs(filepath.Join(root, tree))
		if err != nil {
			t.Fatal(err)
		}
		pkgProblems = append(pkgProblems, p...)
	}
	linkProblems, err := checkMarkdownLinks(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range append(pkgProblems, linkProblems...) {
		t.Error(p)
	}
}
