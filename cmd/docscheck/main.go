// Command docscheck is the repository's documentation gate, run by the
// CI docs job. It enforces two invariants that otherwise rot silently:
//
//   - every Go package under internal/ and cmd/ has a package comment
//     (the doc-comment attached to its package clause, conventionally in
//     doc.go for libraries and atop main.go for commands), so `go doc`
//     on any package explains what it is and which paper section it
//     implements, and every binary documents its flags and role in a
//     multi-node deployment;
//
//   - every relative link in the root-level markdown files (README.md,
//     OPERATIONS.md, PAPER.md, ...) resolves to a file that exists, so
//     renamed or deleted docs break the build instead of the reader.
//
// Usage: docscheck [-root dir]. Exits non-zero listing every violation.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string
	for _, tree := range []string{"internal", "cmd"} {
		pkgProblems, err := checkPackageDocs(filepath.Join(*root, tree))
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, pkgProblems...)
	}

	linkProblems, err := checkMarkdownLinks(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, linkProblems...)

	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Printf("docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// checkPackageDocs walks every directory under root that contains Go
// files and reports packages whose package clause carries no doc
// comment in any non-test file.
func checkPackageDocs(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(dir string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return fmt.Errorf("parse %s: %w", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, name))
			}
		}
		return nil
	})
	sort.Strings(problems)
	return problems, err
}

// mdLink matches inline markdown links and images. Reference-style
// links are rare in this repo and not checked.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// checkMarkdownLinks validates relative link targets in root-level
// *.md files. External schemes and pure in-page anchors are skipped;
// a relative target's anchor fragment is stripped before the existence
// check.
func checkMarkdownLinks(root string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(root, "*.md"))
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, md := range files {
		data, err := os.ReadFile(md)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				if _, err := os.Stat(filepath.Join(filepath.Dir(md), target)); err != nil {
					problems = append(problems, fmt.Sprintf("%s: broken relative link %q", md, m[1]))
				}
			}
		}
	}
	sort.Strings(problems)
	return problems, nil
}
