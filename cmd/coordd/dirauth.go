package main

// coordd's -dirauth mode: instead of measuring, the process runs the
// directory-authority side of the distributed control plane — an
// authenticated RPC listener accepting signed v3bw submissions from
// cmd/bwauthd processes, the internal/dirauth merge service folding the
// fresh views into a median-of-views bandwidth file, the observability
// plane serving the merged /v3bw plus /dirauth status, and (with
// -state-dir) the durable store persisting each accepted submission so
// a restarted merge node recovers its freshness windows and merged
// output without waiting for every BWAuth to resubmit.

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"strings"
	"sync"
	"time"

	"flashflow/internal/dirauth"
	"flashflow/internal/metrics"
	"flashflow/internal/obs"
	"flashflow/internal/rpc"
	"flashflow/internal/store"
)

// dirauthOptions carries the -dirauth mode's flag values out of run().
type dirauthOptions struct {
	rpcAddr    string
	bwauths    string
	authSecret string
	freshFor   time.Duration
	minViews   int
	producer   string
	httpAddr   string
	stateDir   string
	noPersist  bool
	ckptEvery  int
}

// runDirauth is the -dirauth mode main loop: build the merge service
// (recovering persisted views first), serve RPC submissions until the
// context is cancelled, then drain and checkpoint.
func runDirauth(ctx context.Context, log *logger, o dirauthOptions) error {
	names := strings.Split(o.bwauths, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	if o.authSecret == "" {
		return fmt.Errorf("coordd: -dirauth needs -auth-secret to derive the registered BWAuth keys")
	}
	// Demo key management (see OPERATIONS.md): both sides derive each
	// BWAuth's keypair from the shared secret and the BWAuth's name. A
	// production deployment registers real per-BWAuth public keys here
	// and never holds their private halves.
	keys := make(map[string]ed25519.PublicKey, len(names))
	authorized := make([]ed25519.PublicKey, 0, len(names))
	for _, n := range names {
		if n == "" {
			return fmt.Errorf("coordd: empty BWAuth name in -bwauths %q", o.bwauths)
		}
		id := rpc.DeriveIdentity(o.authSecret, n)
		keys[n] = id.Pub
		authorized = append(authorized, id.Pub)
	}

	counters := metrics.NewCounters()
	snapshot := &obs.SnapshotHolder{}

	// Durable state: each accepted submission is WAL-appended, and a full
	// checkpoint is taken every -checkpoint-every "rounds" of submissions
	// (len(names) accepts). stateMu guards the state struct; the store
	// serializes its own file access.
	var durable store.Store
	state := store.NewState()
	if o.stateDir != "" && !o.noPersist {
		fs, err := store.Open(o.stateDir, store.Options{})
		if err != nil {
			return fmt.Errorf("coordd: open state dir: %w", err)
		}
		defer fs.Close()
		durable = fs
		if state, err = fs.Load(); err != nil {
			return fmt.Errorf("coordd: load state: %w", err)
		}
	}
	var stateMu sync.Mutex
	accepts := 0
	ckptAccepts := o.ckptEvery * len(names)

	svc, err := dirauth.NewMergeService(dirauth.MergeConfig{
		Keys:     keys,
		FreshFor: o.freshFor,
		MinViews: o.minViews,
		Producer: o.producer,
		Counters: counters,
		OnAccept: func(v dirauth.View) {
			log.event("submission",
				fmt.Sprintf("submission: %s round %d (%d bytes)", v.BWAuth, v.Round, len(v.Body)),
				"bwauth", v.BWAuth, "round", v.Round, "bytes", len(v.Body))
			stateMu.Lock()
			defer stateMu.Unlock()
			state.Submissions[v.BWAuth] = store.SubmissionRecord{
				Round: v.Round, Version: v.Version, Unix: v.Received.Unix(),
				Body: append([]byte(nil), v.Body...),
			}
			if durable == nil {
				return
			}
			if err := durable.Append(store.Record{
				Kind: store.KindSubmission, Relay: v.BWAuth, Round: v.Round,
				Version: v.Version, Unix: v.Received.Unix(), Body: v.Body,
			}); err != nil {
				log.event("store_error", "  store append: "+err.Error(), "error", err.Error())
			}
			accepts++
			if ckptAccepts > 0 && accepts%ckptAccepts == 0 {
				if err := durable.Checkpoint(state); err != nil {
					log.event("store_error", "  store checkpoint: "+err.Error(), "error", err.Error())
				}
			}
		},
		OnMerge: func(m dirauth.Merged) {
			if err := snapshot.Publish(m.Round, m.File, time.Now()); err != nil {
				log.event("snapshot_error", "  merged snapshot render: "+err.Error(),
					"round", m.Round, "error", err.Error())
			}
			human := fmt.Sprintf("merge: round %d from %d views (%s), %d relays",
				m.Round, len(m.Views), strings.Join(m.Views, ","), len(m.File.Entries))
			if len(m.SplitView) > 0 {
				human += fmt.Sprintf("; split-view suspects: %s", strings.Join(m.SplitView, ","))
			}
			log.event("merge", human,
				"round", m.Round, "views", m.Views, "relays", len(m.File.Entries),
				"split_view", m.SplitView)
		},
	})
	if err != nil {
		return err
	}

	// Recover persisted views: freshness windows resume from the original
	// receipt times, and a merge (if enough views are still fresh)
	// republishes /v3bw before the listener even opens.
	if len(state.Submissions) > 0 {
		for name, sub := range state.Submissions {
			if err := svc.Restore(name, sub.Round, sub.Version, sub.Body, time.Unix(sub.Unix, 0)); err != nil {
				log.event("recover_error", "coordd: restore submission: "+err.Error(),
					"bwauth", name, "error", err.Error())
			}
		}
		log.event("recover",
			fmt.Sprintf("coordd: recovered %d persisted submission(s) from %s", len(state.Submissions), o.stateDir),
			"state_dir", o.stateDir, "submissions", len(state.Submissions))
		if _, err := svc.Remerge(); err != nil {
			log.event("recover", "coordd: no merge from recovered views: "+err.Error(), "error", err.Error())
		}
	}

	srv, err := rpc.NewServer(rpc.ServerConfig{
		Authorized:    authorized,
		Counters:      counters,
		CounterPrefix: "dirauth_rpc",
		Handler: func(peer ed25519.PublicKey, method uint8, body []byte) ([]byte, error) {
			if method != rpc.MethodSubmitV3BW {
				return nil, fmt.Errorf("unknown method %d", method)
			}
			sub, err := dirauth.DecodeSubmission(body)
			if err != nil {
				return nil, err
			}
			merged, err := svc.Submit(sub)
			if err != nil {
				return nil, err
			}
			if merged == nil {
				return fmt.Appendf(nil, "accepted %s round %d; awaiting more views", sub.BWAuth, sub.Round), nil
			}
			return fmt.Appendf(nil, "accepted %s round %d; merged round %d over %d views",
				sub.BWAuth, sub.Round, merged.Round, len(merged.Views)), nil
		},
	})
	if err != nil {
		return err
	}
	addr, err := srv.Start(o.rpcAddr)
	if err != nil {
		return fmt.Errorf("coordd: rpc listener: %w", err)
	}
	log.event("rpc", fmt.Sprintf("dirauth: rpc on %s, registered bwauths: %s", addr, strings.Join(names, ",")),
		"addr", addr.String(), "bwauths", names)

	obsSrv := obs.NewServer(obs.Config{Counters: counters, Snapshot: snapshot, Merge: svc})
	if o.httpAddr != "" {
		haddr, err := obsSrv.Start(o.httpAddr)
		if err != nil {
			return fmt.Errorf("coordd: observability server: %w", err)
		}
		log.event("http", fmt.Sprintf("observability: http://%s (/metrics /dirauth /v3bw)", haddr),
			"addr", haddr.String())
	}

	<-ctx.Done()
	log.event("shutdown", "coordd: dirauth mode interrupted — draining")
	srv.Close()
	drainCtx, cancel := context.WithTimeout(context.Background(), drainBudget)
	if err := obsSrv.Shutdown(drainCtx); err != nil {
		log.event("shutdown_error", "coordd: http drain: "+err.Error(), "error", err.Error())
	}
	cancel()
	if durable != nil {
		stateMu.Lock()
		if err := durable.Checkpoint(state); err != nil {
			log.event("store_error", "coordd: final checkpoint: "+err.Error(), "error", err.Error())
		}
		stateMu.Unlock()
	}
	if !log.json {
		fmt.Print(counters.String())
	}
	return nil
}
