// Command coordd runs FlashFlow as a long-lived continuous-measurement
// service (internal/coord): it spins up an in-process population of target
// relays speaking the real wire protocol over localhost TCP, then drives
// scheduler rounds over the whole population until interrupted — measuring
// every relay each round with a bounded worker pool, reusing pooled
// connections across rounds, retrying failed slots with backoff, feeding
// each round's medians into the next round's priors, and periodically
// writing v3bw-style bandwidth-file snapshots.
//
// SIGINT or SIGTERM triggers a graceful shutdown: in-flight measurement
// slots are cancelled mid-slot (the streaming backends tear them down
// within about one second of data, salvaging the completed seconds as
// partial estimates), the final (partial) round is reported, and the
// process exits cleanly — no waiting out full slots.
//
// Usage:
//
//	go run ./cmd/coordd [-relays 4] [-measurers 2] [-workers 4] \
//	    [-rounds 0] [-interval 2s] [-slot 1] [-slot-timeout 0] [-pool 4] \
//	    [-pool-ttl 90s] [-snapshot-dir DIR] [-attempts 3] [-relay-rate 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"flashflow/internal/coord"
	"flashflow/internal/core"
	"flashflow/internal/metrics"
	"flashflow/internal/wire"
)

func main() {
	if err := run(); err != nil && err != context.Canceled {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		relays      = flag.Int("relays", 4, "number of in-process target relays")
		baseMbit    = flag.Float64("rate", 8, "slowest relay capacity in Mbit/s (others step up from it)")
		measurers   = flag.Int("measurers", 2, "measurement team size")
		workers     = flag.Int("workers", 4, "concurrent slot executions")
		rounds      = flag.Int("rounds", 0, "rounds to run (0 = until SIGINT)")
		interval    = flag.Duration("interval", 2*time.Second, "pause between rounds")
		slotSecs    = flag.Int("slot", 1, "measurement slot length t in seconds")
		sockets     = flag.Int("sockets", 4, "total measurement sockets s")
		poolSize    = flag.Int("pool", 4, "max idle pooled connections per target")
		poolTTL     = flag.Duration("pool-ttl", 90*time.Second, "idle connection TTL")
		snapshotDir = flag.String("snapshot-dir", "", "directory for v3bw snapshots (empty = none)")
		attempts    = flag.Int("attempts", 3, "max measurement attempts per slot")
		slotTimeout = flag.Duration("slot-timeout", 0, "wall-clock bound per slot assignment; its context is cancelled on expiry (0 = off)")
		relayRate   = flag.Float64("relay-rate", 0, "per-relay attempt rate limit per second (0 = off)")
	)
	flag.Parse()
	if *slotSecs <= 0 {
		// Guard explicitly: a zero SlotSeconds would read as "params not
		// set" downstream and silently select the 30-second default.
		return fmt.Errorf("coordd: -slot must be positive, got %d", *slotSecs)
	}
	if *relays <= 0 {
		return fmt.Errorf("coordd: -relays must be positive, got %d", *relays)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Measurement team identities.
	ids := make([]wire.Identity, *measurers)
	for i := range ids {
		var err error
		ids[i], err = wire.NewIdentity()
		if err != nil {
			return err
		}
	}

	// In-process relay population: real wire targets on localhost, with
	// capacities stepping up from the base rate.
	addrs := make(map[string]string, *relays)
	source := make(coord.StaticRelays, 0, *relays)
	var listeners []net.Listener
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	for i := 0; i < *relays; i++ {
		name := fmt.Sprintf("relay%02d", i)
		rate := *baseMbit * 1e6 * (1 + 0.5*float64(i))
		tgt := wire.NewTarget(wire.TargetConfig{RateBps: rate})
		for _, id := range ids {
			tgt.Authorize(id.Pub)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners = append(listeners, l)
		go tgt.Serve(l)
		addrs[name] = l.Addr().String()
		source = append(source, core.RelayEstimate{Name: name, EstimateBps: rate})
		fmt.Printf("%s: %s, capacity %.1f Mbit/s\n", name, l.Addr(), rate/1e6)
	}

	p := core.DefaultParams()
	p.SlotSeconds = *slotSecs
	p.Sockets = *sockets
	p.CheckProb = 0.01

	pool := coord.NewPool(*poolSize, *poolTTL)
	defer pool.Close()

	members := make([]wire.Member, len(ids))
	for i := range ids {
		member := i
		members[i] = wire.Member{
			Identity: ids[i],
			Dial: func(target string) wire.Dialer {
				addr := addrs[target]
				// Pool key carries the measurer identity so reuse never
				// crosses identities.
				key := fmt.Sprintf("%s/m%d", target, member)
				return pool.Dialer(key, func() (net.Conn, error) {
					return net.Dial("tcp", addr)
				})
			},
		}
	}
	team := make([]*core.Measurer, len(ids))
	for i := range team {
		team[i] = &core.Measurer{Name: fmt.Sprintf("m%d", i), CapacityBps: 500e6, Cores: 2}
	}
	backend := &wire.Backend{Members: members, CheckProb: p.CheckProb, Seed: time.Now().UnixNano()}
	auths := []*core.BWAuth{core.NewBWAuth("bw0", team, backend, p)}

	counters := metrics.NewCounters()
	c, err := coord.New(coord.Config{
		Params:              p,
		Workers:             *workers,
		MaxAttempts:         *attempts,
		SlotTimeout:         *slotTimeout,
		RelayAttemptsPerSec: *relayRate,
		RelayBurst:          2,
		RoundInterval:       *interval,
		MaxRounds:           *rounds,
		SnapshotDir:         *snapshotDir,
		Pool:                pool,
		Counters:            counters,
		OnRound: func(r coord.RoundReport) {
			fmt.Println(r)
			if r.SnapshotPath != "" {
				fmt.Printf("  snapshot: %s\n", r.SnapshotPath)
			}
			if len(r.Unscheduled) > 0 {
				names := r.Unscheduled
				if len(names) > 5 {
					names = names[:5]
				}
				fmt.Printf("  unscheduled: %d relay(s) did not fit the schedule (team capacity too small): %s\n",
					len(r.Unscheduled), strings.Join(names, ", "))
			}
			for _, um := range r.Unmeasured {
				fmt.Printf("  unmeasured: %s@%s after %d attempts: %s\n", um.Relay, um.BWAuth, um.Attempts, um.Reason)
			}
		},
	}, auths, source)
	if err != nil {
		return err
	}

	fmt.Printf("coordd: %d relays, %d measurers, %d workers; ctrl-C for graceful shutdown\n",
		*relays, *measurers, *workers)
	err = c.Run(ctx)
	if err == context.Canceled {
		fmt.Println("coordd: interrupted — in-flight slots cancelled and drained")
	}
	// §5 anomaly evidence accumulated over the run: relays whose
	// measurements tripped the clamp, echo verification, or the
	// stall/skew/split-view cross-checks (see DESIGN.md).
	if anomalies := c.Status().Anomalies; len(anomalies) > 0 {
		names := make([]string, 0, len(anomalies))
		for name := range anomalies {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("anomaly suspects:")
		for _, name := range names {
			a := anomalies[name]
			fmt.Printf("  %s: clamped-seconds=%d ratio-clamped=%d echo-failures=%d stall=%d skew=%d split-view=%d\n",
				name, a.ClampedSeconds, a.RatioClampedSlots, a.EchoFailures,
				a.StallSuspectSlots, a.SkewSuspectSlots, a.SplitViewRounds)
		}
	}
	fmt.Print(counters.String())
	return err
}
