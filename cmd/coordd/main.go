// Command coordd runs FlashFlow as a long-lived continuous-measurement
// service (internal/coord): it spins up an in-process population of target
// relays — speaking the real wire protocol over localhost TCP by default,
// or simulated instantly with -sim — then drives scheduler rounds over the
// whole population until interrupted: measuring every relay each round
// with a bounded worker pool, reusing pooled connections across rounds,
// retrying failed slots with backoff, feeding each round's medians into
// the next round's priors, and publishing v3bw-style bandwidth-file
// snapshots to disk and to the HTTP observability plane.
//
// With -http-addr set, the internal/obs server exposes GET /metrics
// (Prometheus text format), /status and /status/anomalies (JSON), and
// /v3bw (the latest snapshot behind an atomically swapped pre-rendered
// body with ETag revalidation). -debug-addr serves net/http/pprof on a
// separate listener. Threshold crossings in the §5 anomaly table emit
// alerts to the log and, with -alert-webhook, to a webhook with
// retry/backoff.
//
// With -state-dir set, the coordinator's cross-round state (per-relay
// priors, §5 anomaly windows, round counter, last published v3bw
// snapshot) is durable (internal/store): every mutation is logged to a
// CRC-framed write-ahead log and a full snapshot is checkpointed every
// -checkpoint-every rounds, so a restart with the same -state-dir resumes
// warm — same priors, same anomaly windows, next round number — instead
// of re-converging from consensus estimates. See OPERATIONS.md for the
// state-dir layout and recovery semantics.
//
// With -dirauth, coordd instead runs the directory-authority merge node
// of the distributed control plane: it accepts signed v3bw submissions
// from cmd/bwauthd processes over the authenticated RPC protocol
// (internal/rpc), merges the fresh views median-of-views style
// (internal/dirauth.MergeService), serves the merged file on /v3bw and
// the per-BWAuth submission state on /dirauth, and persists accepted
// submissions through -state-dir so a restart recovers its freshness
// windows. See OPERATIONS.md "Multi-node deployment" for the full
// runbook.
//
// SIGINT or SIGTERM triggers a graceful shutdown: in-flight measurement
// slots are cancelled mid-slot (the streaming backends tear them down
// within about one second of data, salvaging the completed seconds as
// partial estimates), the HTTP server drains, pending alerts flush, the
// final (partial) round is reported, a final checkpoint is flushed so
// even an interrupt loses at most the in-flight round, and the process
// exits cleanly.
//
// Usage:
//
//	go run ./cmd/coordd [-relays 4] [-measurers 2] [-workers 4] \
//	    [-rounds 0] [-interval 2s] [-slot 1] [-slot-timeout 0] [-pool 4] \
//	    [-pool-ttl 90s] [-snapshot-dir DIR] [-attempts 3] [-relay-rate 0] \
//	    [-state-dir DIR] [-checkpoint-every 1] [-no-persist] \
//	    [-sim] [-http-addr 127.0.0.1:8570] [-debug-addr 127.0.0.1:8571] \
//	    [-log-format text|json] [-alert-webhook URL]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"flashflow/internal/coord"
	"flashflow/internal/core"
	"flashflow/internal/dirauth"
	"flashflow/internal/metrics"
	"flashflow/internal/obs"
	"flashflow/internal/relay"
	"flashflow/internal/store"
	"flashflow/internal/wire"
)

// drainBudget bounds how long shutdown waits on each draining subsystem
// (the HTTP server, the alert queue) — matched to the coordinator's own
// ~1 s in-flight-slot drain so a stuck scraper or webhook cannot hold the
// process past the window operators already expect.
const drainBudget = time.Second

func main() {
	if err := run(); err != nil && err != context.Canceled {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// logger emits coordd's operational records in one of two formats: the
// human-readable lines the command has always printed (default), or one
// JSON object per line (-log-format=json) so round summaries, anomaly
// reports, and alerts are machine-ingestable by a log pipeline.
type logger struct {
	mu   sync.Mutex
	json bool
}

// event emits one record: kind and fields drive the JSON encoding, human
// is the text-mode line. fields must alternate key, value.
func (l *logger) event(kind, human string, fields ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.json {
		fmt.Println(human)
		return
	}
	doc := make(map[string]any, len(fields)/2+2)
	doc["event"] = kind
	doc["time"] = time.Now().UTC().Format(time.RFC3339Nano)
	for i := 0; i+1 < len(fields); i += 2 {
		doc[fields[i].(string)] = fields[i+1]
	}
	b, err := json.Marshal(doc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coordd: log marshal: %v\n", err)
		return
	}
	os.Stdout.Write(append(b, '\n'))
}

func run() error {
	var (
		relays      = flag.Int("relays", 4, "number of in-process target relays")
		baseMbit    = flag.Float64("rate", 8, "slowest relay capacity in Mbit/s (others step up from it)")
		measurers   = flag.Int("measurers", 2, "measurement team size")
		workers     = flag.Int("workers", 4, "concurrent slot executions")
		rounds      = flag.Int("rounds", 0, "rounds to run (0 = until SIGINT)")
		interval    = flag.Duration("interval", 2*time.Second, "pause between rounds")
		slotSecs    = flag.Int("slot", 1, "measurement slot length t in seconds")
		sockets     = flag.Int("sockets", 4, "total measurement sockets s")
		poolSize    = flag.Int("pool", 4, "max idle pooled connections per target")
		poolTTL     = flag.Duration("pool-ttl", 90*time.Second, "idle connection TTL")
		snapshotDir = flag.String("snapshot-dir", "", "directory for v3bw snapshots (empty = none)")
		attempts    = flag.Int("attempts", 3, "max measurement attempts per slot")
		slotTimeout = flag.Duration("slot-timeout", 0, "wall-clock bound per slot assignment; its context is cancelled on expiry (0 = off)")
		relayRate   = flag.Float64("relay-rate", 0, "per-relay attempt rate limit per second (0 = off)")
		stateDir    = flag.String("state-dir", "", "directory for durable coordinator state (priors, anomaly windows, round counter, last v3bw); empty = in-memory only")
		ckptEvery   = flag.Int("checkpoint-every", 1, "rounds between full state checkpoints (the WAL covers the gap)")
		noPersist   = flag.Bool("no-persist", false, "ignore -state-dir and run without durable state")
		sim         = flag.Bool("sim", false, "simulated measurement backend: deterministic, no sockets, rounds complete instantly")
		httpAddr    = flag.String("http-addr", "", "observability HTTP listen address (/metrics, /status, /v3bw); empty = off")
		debugAddr   = flag.String("debug-addr", "", "pprof listen address (net/http/pprof); empty = off")
		logFormat   = flag.String("log-format", "text", "log output format: text (human) or json (one object per line)")
		webhook     = flag.String("alert-webhook", "", "POST threshold alerts as JSON to this URL (retried with backoff)")
		alertClamp  = flag.Int64("alert-clamp-seconds", 30, "alert when a relay accumulates this many clamped seconds (0 = off)")
		alertEcho   = flag.Int64("alert-echo-failures", 1, "alert when a relay accumulates this many echo-failures (0 = off)")
		alertSplit  = flag.Int64("alert-split-view", 1, "alert when a relay accumulates this many split-view rounds (0 = off)")

		// -dirauth mode: run the directory-authority merge node instead of
		// measuring (see cmd/coordd/dirauth.go and OPERATIONS.md).
		dirauthMode = flag.Bool("dirauth", false, "run as the dirauth merge node: accept signed v3bw submissions over RPC and serve the median-of-views merge")
		rpcAddr     = flag.String("rpc-addr", "127.0.0.1:8580", "dirauth mode: RPC listen address for BWAuth submissions")
		bwauthNames = flag.String("bwauths", "bw0,bw1,bw2", "dirauth mode: comma-separated registered BWAuth names")
		authSecret  = flag.String("auth-secret", "", "dirauth mode: shared secret the demo key derivation uses (see OPERATIONS.md; not for production)")
		freshFor    = flag.Duration("fresh-for", 15*time.Minute, "dirauth mode: per-BWAuth submission freshness window (0 = views never expire)")
		minViews    = flag.Int("min-views", 1, "dirauth mode: minimum fresh views required to merge")
		producer    = flag.String("producer", "dirauth", "dirauth mode: producer header of the merged bandwidth file")
	)
	flag.Parse()
	if *slotSecs <= 0 {
		// Guard explicitly: a zero SlotSeconds would read as "params not
		// set" downstream and silently select the 30-second default.
		return fmt.Errorf("coordd: -slot must be positive, got %d", *slotSecs)
	}
	if *relays <= 0 {
		return fmt.Errorf("coordd: -relays must be positive, got %d", *relays)
	}
	if *logFormat != "text" && *logFormat != "json" {
		return fmt.Errorf("coordd: -log-format must be text or json, got %q", *logFormat)
	}
	log := &logger{json: *logFormat == "json"}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *dirauthMode {
		return runDirauth(ctx, log, dirauthOptions{
			rpcAddr:    *rpcAddr,
			bwauths:    *bwauthNames,
			authSecret: *authSecret,
			freshFor:   *freshFor,
			minViews:   *minViews,
			producer:   *producer,
			httpAddr:   *httpAddr,
			stateDir:   *stateDir,
			noPersist:  *noPersist,
			ckptEvery:  *ckptEvery,
		})
	}

	p := core.DefaultParams()
	p.SlotSeconds = *slotSecs
	p.Sockets = *sockets
	p.CheckProb = 0.01

	counters := metrics.NewCounters()

	// Relay population + measurement backend: real wire targets over
	// localhost TCP, or the deterministic simulation (-sim) whose slots
	// consume no wall clock — the mode CI's endpoint smoke test runs.
	var (
		auths   []*core.BWAuth
		source  coord.StaticRelays
		pool    *coord.Pool
		cleanup func()
	)
	if *sim {
		backend := core.NewSimBackend(simPaths(*measurers), 1)
		team := make([]*core.Measurer, *measurers)
		for i := range team {
			team[i] = &core.Measurer{Name: fmt.Sprintf("m%d", i), CapacityBps: 500e6, Cores: 2}
		}
		for i := 0; i < *relays; i++ {
			name := fmt.Sprintf("relay%02d", i)
			rate := *baseMbit * 1e6 * (1 + 0.5*float64(i))
			backend.AddTarget(name, &core.SimTarget{
				Relay:    relay.New(relay.Config{Name: name, TorCapBps: rate}),
				LinkBps:  2e9,
				Behavior: core.BehaviorHonest,
			})
			source = append(source, core.RelayEstimate{Name: name, EstimateBps: rate})
			log.event("relay", fmt.Sprintf("%s: simulated, capacity %.1f Mbit/s", name, rate/1e6),
				"name", name, "backend", "sim", "capacity_mbit", rate/1e6)
		}
		auths = []*core.BWAuth{core.NewBWAuth("bw0", team, backend, p)}
		cleanup = func() {}
	} else {
		var err error
		auths, source, pool, cleanup, err = wireSetup(log, *relays, *measurers, *baseMbit, *poolSize, *poolTTL, p)
		if err != nil {
			return err
		}
	}
	defer cleanup()

	// Observability plane: snapshot holder fed by the coordinator's
	// OnSnapshot hook, alert manager fed by the per-round anomaly table,
	// HTTP server exposing both plus /metrics and /status.
	snapshot := &obs.SnapshotHolder{}
	thresholds := obs.DefaultThresholds()
	thresholds.ClampedSeconds = *alertClamp
	thresholds.EchoFailures = *alertEcho
	thresholds.SplitViewRounds = *alertSplit
	sinks := []obs.Sink{&obs.LogSink{W: os.Stdout, JSON: log.json}}
	if *webhook != "" {
		sinks = append(sinks, &obs.WebhookSink{URL: *webhook})
	}
	alerts := obs.NewAlertManager(obs.AlertConfig{
		Thresholds: thresholds,
		Sinks:      sinks,
		Counters:   counters,
	})

	// Durable state: opened before the coordinator so New can replay the
	// WAL onto the latest snapshot and resume warm. Closed after Run's
	// final checkpoint has flushed.
	var durable store.Store
	if *stateDir != "" && !*noPersist {
		fs, err := store.Open(*stateDir, store.Options{})
		if err != nil {
			return fmt.Errorf("coordd: open state dir: %w", err)
		}
		defer fs.Close()
		durable = fs
	}

	var c *coord.Coordinator
	cfg := coord.Config{
		Params:              p,
		Workers:             *workers,
		MaxAttempts:         *attempts,
		SlotTimeout:         *slotTimeout,
		RelayAttemptsPerSec: *relayRate,
		RelayBurst:          2,
		RoundInterval:       *interval,
		MaxRounds:           *rounds,
		SnapshotDir:         *snapshotDir,
		Pool:                pool,
		Store:               durable,
		CheckpointEvery:     *ckptEvery,
		Counters:            counters,
		OnSnapshot: func(round int, f *dirauth.BandwidthFile) {
			if err := snapshot.Publish(round, f, time.Now()); err != nil {
				log.event("snapshot_error", "  snapshot render: "+err.Error(),
					"round", round, "error", err.Error())
			}
		},
		OnRound: func(r coord.RoundReport) {
			logRound(log, r)
			st := c.Status()
			alerts.Evaluate(r.Round, st.Anomalies, time.Now())
			alerts.Retain(st.Anomalies)
		},
	}
	c, err := coord.New(cfg, auths, source)
	if err != nil {
		return err
	}
	if durable != nil {
		s := c.Status()
		log.event("recover",
			fmt.Sprintf("coordd: durable state from %s: resuming after round %d (%d priors, %d anomaly records)",
				*stateDir, s.Round, s.Counters["coord_store_recovered_priors"], s.Counters["coord_store_recovered_anomalies"]),
			"state_dir", *stateDir,
			"round", s.Round,
			"priors", s.Counters["coord_store_recovered_priors"],
			"anomalies", s.Counters["coord_store_recovered_anomalies"])
	}

	srv := obs.NewServer(obs.Config{Coordinator: c, Counters: counters, Snapshot: snapshot})
	if *httpAddr != "" {
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			return fmt.Errorf("coordd: observability server: %w", err)
		}
		log.event("http", fmt.Sprintf("observability: http://%s (/metrics /status /status/anomalies /v3bw)", addr),
			"addr", addr.String())
	}
	if *debugAddr != "" {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("coordd: debug server: %w", err)
		}
		defer dl.Close()
		debugSrv := &http.Server{Handler: obs.DebugHandler(), ReadHeaderTimeout: 5 * time.Second}
		go func() { _ = debugSrv.Serve(dl) }()
		log.event("pprof", fmt.Sprintf("pprof: http://%s/debug/pprof/", dl.Addr()),
			"addr", dl.Addr().String())
	}

	log.event("start",
		fmt.Sprintf("coordd: %d relays, %d measurers, %d workers; ctrl-C for graceful shutdown",
			*relays, *measurers, *workers),
		"relays", *relays, "measurers", *measurers, "workers", *workers, "sim", *sim)
	runErr := c.Run(ctx)
	if runErr == context.Canceled {
		log.event("shutdown", "coordd: interrupted — in-flight slots cancelled and drained")
	}

	// Drain the observability plane inside the same ~1 s budget as the
	// measurement pipeline: the HTTP server finishes in-flight responses,
	// then pending alerts get the remainder before delivery is cancelled.
	drainCtx, cancel := context.WithTimeout(context.Background(), drainBudget)
	if err := srv.Shutdown(drainCtx); err != nil {
		log.event("shutdown_error", "coordd: http drain: "+err.Error(), "error", err.Error())
	}
	if err := alerts.Flush(drainCtx); err != nil {
		log.event("shutdown_error", "coordd: alert flush: "+err.Error(), "error", err.Error())
	}
	cancel()
	alerts.Close()

	// §5 anomaly evidence accumulated over the run: relays whose
	// measurements tripped the clamp, echo verification, or the
	// stall/skew/split-view cross-checks (see DESIGN.md).
	if anomalies := c.Status().Anomalies; len(anomalies) > 0 {
		names := make([]string, 0, len(anomalies))
		for name := range anomalies {
			names = append(names, name)
		}
		sort.Strings(names)
		if !log.json {
			fmt.Println("anomaly suspects:")
		}
		for _, name := range names {
			a := anomalies[name]
			log.event("anomaly",
				fmt.Sprintf("  %s: clamped-seconds=%d ratio-clamped=%d echo-failures=%d stall=%d skew=%d split-view=%d",
					name, a.ClampedSeconds, a.RatioClampedSlots, a.EchoFailures,
					a.StallSuspectSlots, a.SkewSuspectSlots, a.SplitViewRounds),
				"relay", name,
				"clamped_seconds", a.ClampedSeconds,
				"ratio_clamped_slots", a.RatioClampedSlots,
				"echo_failures", a.EchoFailures,
				"stall_suspect_slots", a.StallSuspectSlots,
				"skew_suspect_slots", a.SkewSuspectSlots,
				"split_view_rounds", a.SplitViewRounds)
		}
	}
	if log.json {
		counterDoc := make(map[string]int64)
		for _, kv := range counters.SortedSnapshot() {
			counterDoc[kv.Name] = kv.Value
		}
		log.event("counters", "", "counters", counterDoc)
	} else {
		fmt.Print(counters.String())
	}
	return runErr
}

// logRound emits one round summary.
func logRound(log *logger, r coord.RoundReport) {
	human := r.String()
	if r.SnapshotPath != "" {
		human += "\n  snapshot: " + r.SnapshotPath
	}
	if len(r.Unscheduled) > 0 {
		names := r.Unscheduled
		if len(names) > 5 {
			names = names[:5]
		}
		human += fmt.Sprintf("\n  unscheduled: %d relay(s) did not fit the schedule (team capacity too small): %s",
			len(r.Unscheduled), strings.Join(names, ", "))
	}
	for _, um := range r.Unmeasured {
		human += fmt.Sprintf("\n  unmeasured: %s@%s after %d attempts: %s", um.Relay, um.BWAuth, um.Attempts, um.Reason)
	}
	log.event("round", human,
		"round", r.Round,
		"relays", r.Relays,
		"scheduled", r.Scheduled,
		"conclusive", r.Conclusive,
		"inconclusive", r.Inconclusive,
		"unmeasured", len(r.Unmeasured),
		"unscheduled", len(r.Unscheduled),
		"retries", r.Retries,
		"rate_limited", r.RateLimited,
		"estimates", len(r.Estimates),
		"pool_hits", r.Pool.Hits,
		"pool_misses", r.Pool.Misses,
		"duration_ms", float64(r.Duration)/float64(time.Millisecond),
		"partial", r.Partial,
		"snapshot", r.SnapshotPath)
}

// simPaths models one low-noise measurement path per team member for the
// -sim backend.
func simPaths(measurers int) []core.PathModel {
	paths := make([]core.PathModel, measurers)
	for i := range paths {
		paths[i] = core.PathModel{
			RTT:         40 * time.Millisecond,
			LinkBps:     1e9,
			BiasSigma:   0.03,
			JitterSigma: 0.02,
		}
	}
	return paths
}

// wireSetup builds the default real-socket population: wire targets on
// localhost listeners, a measurement team with pooled authenticated
// connections, and one BWAuth over the wire backend.
func wireSetup(log *logger, relays, measurers int, baseMbit float64, poolSize int, poolTTL time.Duration, p core.Params) ([]*core.BWAuth, coord.StaticRelays, *coord.Pool, func(), error) {
	ids := make([]wire.Identity, measurers)
	for i := range ids {
		var err error
		ids[i], err = wire.NewIdentity()
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}

	addrs := make(map[string]string, relays)
	source := make(coord.StaticRelays, 0, relays)
	var listeners []net.Listener
	cleanupListeners := func() {
		for _, l := range listeners {
			l.Close()
		}
	}
	for i := 0; i < relays; i++ {
		name := fmt.Sprintf("relay%02d", i)
		rate := baseMbit * 1e6 * (1 + 0.5*float64(i))
		tgt := wire.NewTarget(wire.TargetConfig{RateBps: rate})
		for _, id := range ids {
			tgt.Authorize(id.Pub)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanupListeners()
			return nil, nil, nil, nil, err
		}
		listeners = append(listeners, l)
		go tgt.Serve(l)
		addrs[name] = l.Addr().String()
		source = append(source, core.RelayEstimate{Name: name, EstimateBps: rate})
		log.event("relay", fmt.Sprintf("%s: %s, capacity %.1f Mbit/s", name, l.Addr(), rate/1e6),
			"name", name, "addr", l.Addr().String(), "capacity_mbit", rate/1e6)
	}

	pool := coord.NewPool(poolSize, poolTTL)
	members := make([]wire.Member, len(ids))
	for i := range ids {
		member := i
		members[i] = wire.Member{
			Identity: ids[i],
			Dial: func(target string) wire.Dialer {
				addr := addrs[target]
				// Pool key carries the measurer identity so reuse never
				// crosses identities.
				key := fmt.Sprintf("%s/m%d", target, member)
				return pool.Dialer(key, func() (net.Conn, error) {
					return net.Dial("tcp", addr)
				})
			},
		}
	}
	team := make([]*core.Measurer, len(ids))
	for i := range team {
		team[i] = &core.Measurer{Name: fmt.Sprintf("m%d", i), CapacityBps: 500e6, Cores: 2}
	}
	backend := &wire.Backend{Members: members, CheckProb: p.CheckProb, Seed: time.Now().UnixNano()}
	auths := []*core.BWAuth{core.NewBWAuth("bw0", team, backend, p)}
	cleanup := func() {
		cleanupListeners()
		pool.Close()
	}
	return auths, source, pool, cleanup, nil
}
