// Command bench runs the FlashFlow data-plane performance harness
// (internal/perf) and writes a machine-readable BENCH_wire.json report.
//
// Typical uses:
//
//	go run ./cmd/bench                         # full run, report to BENCH_wire.json
//	go run ./cmd/bench -quick                  # CI smoke run (short windows)
//	go run ./cmd/bench -scenarios cell-crypto  # one scenario
//	go run ./cmd/bench -quick -baseline BENCH_baseline.json
//	                                           # fail (exit 1) on >20% regression
//	go run ./cmd/bench -out BENCH_baseline.json
//	                                           # refresh the checked-in baseline
//	go run ./cmd/bench -history BENCH_history.jsonl
//	                                           # append a one-line run summary (perf trajectory)
//	go run ./cmd/bench -scenarios schedule-build-1m -cpuprofile cpu.out -memprofile mem.out
//	                                           # profile one scenario with go tool pprof
//	go run ./cmd/bench -transport udp -scenarios wire-echo-mux
//	                                           # run the echo scenarios over the UDP data plane
//	                                           # (exploratory: baselines are recorded with tcp)
//
// The regression check compares cells/sec per scenario against the
// baseline report, normalizing each scenario's ratio by the median ratio
// across scenarios so a uniformly slower or faster machine cancels out
// and the check tracks protocol overhead, not absolute machine speed.
// Allocations per cell are checked too: growth beyond one alloc/cell
// fails regardless of throughput.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"flashflow/internal/perf"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "short measurement windows for CI smoke runs")
		out        = flag.String("out", "BENCH_wire.json", "report output path (- for stdout only)")
		scenarios  = flag.String("scenarios", "", "comma-separated scenario subset (default: all)")
		baseline   = flag.String("baseline", "", "baseline report to compare against; regressions exit nonzero")
		maxRegress = flag.Float64("max-regress", 0.20, "allowed fractional cells/sec regression vs baseline")
		repeat     = flag.Int("repeat", 1, "run each scenario N times, keep the fastest (damps CI noise)")
		list       = flag.Bool("list", false, "list scenarios and exit")
		history    = flag.String("history", "", "append a one-line JSON summary of this run to the given JSONL file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the scenario run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the scenario run to this file")
		transport  = flag.String("transport", "tcp", "data plane for the wire-echo scenarios: tcp or udp (baselines are recorded with tcp)")
	)
	flag.Parse()

	if *list {
		for _, s := range perf.Scenarios() {
			fmt.Printf("%-20s %s\n", s.Name, s.Desc)
		}
		return
	}
	if *transport != "tcp" && *transport != "udp" {
		fmt.Fprintf(os.Stderr, "bench: unknown -transport %q (want tcp or udp)\n", *transport)
		os.Exit(1)
	}

	var names []string
	if *scenarios != "" {
		for _, n := range strings.Split(*scenarios, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer f.Close()
	}

	rep, err := perf.Run(names, perf.Options{Quick: *quick, Repeat: *repeat, Transport: *transport})
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		var unknown *perf.UnknownScenarioError
		if errors.As(err, &unknown) {
			fmt.Fprintln(os.Stderr, "bench: available scenarios:")
			for _, n := range unknown.Available {
				fmt.Fprintln(os.Stderr, "  "+n)
			}
		}
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		runtime.GC() // settle to live objects before the heap snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		f.Close()
	}

	for _, r := range rep.Results {
		fmt.Printf("%-20s %12.0f cells/s %9.1f MB/s %8.2f allocs/cell (%d cells in %.2fs)\n",
			r.Scenario, r.CellsPerSec, r.MBPerSec, r.AllocsPerOp, r.Cells, r.Seconds)
	}

	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Println("report:", *out)
	}

	if *history != "" {
		if err := perf.AppendHistory(*history, rep); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Println("history:", *history)
	}

	if *baseline != "" {
		base, err := perf.LoadReport(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		regs := perf.Compare(base, rep, *maxRegress)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d scenario(s) regressed more than %.0f%% vs %s:\n",
				len(regs), *maxRegress*100, *baseline)
			for _, g := range regs {
				fmt.Fprintln(os.Stderr, "  "+g.String())
			}
			os.Exit(1)
		}
		fmt.Printf("baseline check: ok (within %.0f%% of %s)\n", *maxRegress*100, *baseline)
	}
}
