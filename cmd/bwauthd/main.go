// Command bwauthd runs one bandwidth authority of a distributed
// FlashFlow deployment (paper §4.3): a single BWAuth's scheduler column
// and measurement slots, driven round-by-round by the same coordinator
// engine coordd uses, with each round's bandwidth-file view signed and
// submitted to the directory-authority merge node (coordd -dirauth) over
// the authenticated control-plane RPC (internal/rpc).
//
// Identity: the BWAuth's ed25519 keypair signs both the RPC transport
// handshake and — under a separate domain prefix — the v3bw submissions
// themselves, so the merge node verifies every view end-to-end. With
// -auth-secret the key is derived deterministically from the secret and
// -name (demo key management matching coordd -dirauth; see OPERATIONS.md
// — not for production).
//
// The -sim backend here is configured noise-free: with zero path sigma
// the simulation consumes no randomness, so a bwauthd run is
// byte-deterministic for a fixed population regardless of worker
// interleaving. CI's multi-process smoke test relies on this to assert
// that two identical 3-BWAuth runs produce byte-identical merged /v3bw
// documents.
//
// With -http-addr the observability plane serves this BWAuth's own
// /metrics (including the coord_rpc_* submission-client counters),
// /status, and /v3bw (its local, unmerged view). With -state-dir the
// coordinator state is durable exactly as in coordd.
//
// Usage:
//
//	go run ./cmd/bwauthd -name bw0 -dirauth-addr 127.0.0.1:8580 \
//	    -auth-secret demo [-sim] [-relays 4] [-rounds 0] [-interval 2s] \
//	    [-http-addr 127.0.0.1:8572] [-state-dir DIR] [-log-format text|json]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"flashflow/internal/coord"
	"flashflow/internal/core"
	"flashflow/internal/dirauth"
	"flashflow/internal/metrics"
	"flashflow/internal/obs"
	"flashflow/internal/relay"
	"flashflow/internal/rpc"
	"flashflow/internal/store"
	"flashflow/internal/wire"
)

func main() {
	if err := run(); err != nil && err != context.Canceled {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// logger mirrors coordd's two-format logger: human-readable lines or one
// JSON object per line.
type logger struct {
	mu   sync.Mutex
	json bool
}

func (l *logger) event(kind, human string, fields ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.json {
		fmt.Println(human)
		return
	}
	doc := make(map[string]any, len(fields)/2+2)
	doc["event"] = kind
	doc["time"] = time.Now().UTC().Format(time.RFC3339Nano)
	for i := 0; i+1 < len(fields); i += 2 {
		doc[fields[i].(string)] = fields[i+1]
	}
	b, err := json.Marshal(doc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bwauthd: log marshal: %v\n", err)
		return
	}
	os.Stdout.Write(append(b, '\n'))
}

func run() error {
	var (
		name        = flag.String("name", "bw0", "this BWAuth's registered name (submission identity)")
		dirauthAddr = flag.String("dirauth-addr", "", "merge node RPC address (coordd -dirauth -rpc-addr); empty = standalone, no submissions")
		authSecret  = flag.String("auth-secret", "", "shared secret for demo key derivation (must match the merge node's; see OPERATIONS.md)")
		submitTO    = flag.Duration("submit-timeout", 10*time.Second, "per-submission RPC deadline")

		relays    = flag.Int("relays", 4, "number of in-process target relays")
		baseMbit  = flag.Float64("rate", 8, "slowest relay capacity in Mbit/s (others step up from it)")
		measurers = flag.Int("measurers", 2, "measurement team size")
		workers   = flag.Int("workers", 4, "concurrent slot executions")
		rounds    = flag.Int("rounds", 0, "rounds to run (0 = until SIGINT)")
		interval  = flag.Duration("interval", 2*time.Second, "pause between rounds")
		slotSecs  = flag.Int("slot", 1, "measurement slot length t in seconds")
		sockets   = flag.Int("sockets", 4, "total measurement sockets s")
		attempts  = flag.Int("attempts", 3, "max measurement attempts per slot")

		sim  = flag.Bool("sim", false, "simulated measurement backend: noise-free, deterministic, no sockets")
		seed = flag.Int64("seed", 1, "simulation RNG seed (inert while the sim is noise-free)")

		httpAddr  = flag.String("http-addr", "", "observability HTTP listen address; empty = off")
		stateDir  = flag.String("state-dir", "", "directory for durable coordinator state; empty = in-memory only")
		ckptEvery = flag.Int("checkpoint-every", 1, "rounds between full state checkpoints")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()
	if *slotSecs <= 0 {
		return fmt.Errorf("bwauthd: -slot must be positive, got %d", *slotSecs)
	}
	if *relays <= 0 {
		return fmt.Errorf("bwauthd: -relays must be positive, got %d", *relays)
	}
	if *logFormat != "text" && *logFormat != "json" {
		return fmt.Errorf("bwauthd: -log-format must be text or json, got %q", *logFormat)
	}
	if *dirauthAddr != "" && *authSecret == "" {
		return fmt.Errorf("bwauthd: -dirauth-addr needs -auth-secret to derive this BWAuth's identity")
	}
	log := &logger{json: *logFormat == "json"}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	p := core.DefaultParams()
	p.SlotSeconds = *slotSecs
	p.Sockets = *sockets
	counters := metrics.NewCounters()

	var (
		auth    *core.BWAuth
		source  coord.StaticRelays
		pool    *coord.Pool
		cleanup func()
	)
	if *sim {
		// Noise-free paths: zero sigma consumes no RNG, so slot results —
		// and therefore the round's v3bw view — are byte-deterministic no
		// matter how the worker pool interleaves. Echo checks are off for
		// the same reason (detection draws randomness).
		p.CheckProb = 0
		paths := make([]core.PathModel, *measurers)
		for i := range paths {
			paths[i] = core.PathModel{RTT: 40 * time.Millisecond, LinkBps: 1e9}
		}
		backend := core.NewSimBackend(paths, *seed)
		team := make([]*core.Measurer, *measurers)
		for i := range team {
			team[i] = &core.Measurer{Name: fmt.Sprintf("m%d", i), CapacityBps: 500e6, Cores: 2}
		}
		for i := 0; i < *relays; i++ {
			rname := fmt.Sprintf("relay%02d", i)
			rate := *baseMbit * 1e6 * (1 + 0.5*float64(i))
			backend.AddTarget(rname, &core.SimTarget{
				Relay:    relay.New(relay.Config{Name: rname, TorCapBps: rate}),
				LinkBps:  2e9,
				Behavior: core.BehaviorHonest,
			})
			source = append(source, core.RelayEstimate{Name: rname, EstimateBps: rate})
			log.event("relay", fmt.Sprintf("%s: simulated, capacity %.1f Mbit/s", rname, rate/1e6),
				"name", rname, "backend", "sim", "capacity_mbit", rate/1e6)
		}
		auth = core.NewBWAuth(*name, team, backend, p)
		cleanup = func() {}
	} else {
		var err error
		auth, source, pool, cleanup, err = wireSetup(log, *name, *relays, *measurers, *baseMbit, p)
		if err != nil {
			return err
		}
	}
	defer cleanup()

	// Submission client: one cached authenticated connection to the merge
	// node, redialed transparently if it restarts between rounds. Its
	// coord_rpc_* counters land in the same registry /metrics serves.
	var client *rpc.Client
	var identity wire.Identity
	if *dirauthAddr != "" {
		identity = rpc.DeriveIdentity(*authSecret, *name)
		var err error
		client, err = rpc.NewClient(rpc.ClientConfig{
			Dial: func(ctx context.Context) (io.ReadWriteCloser, error) {
				var d net.Dialer
				return d.DialContext(ctx, "tcp", *dirauthAddr)
			},
			Identity: identity,
			Counters: counters,
		})
		if err != nil {
			return err
		}
		defer client.Close()
	}

	var durable store.Store
	if *stateDir != "" {
		fs, err := store.Open(*stateDir, store.Options{})
		if err != nil {
			return fmt.Errorf("bwauthd: open state dir: %w", err)
		}
		defer fs.Close()
		durable = fs
	}

	snapshot := &obs.SnapshotHolder{}
	var c *coord.Coordinator
	cfg := coord.Config{
		Params:          p,
		Workers:         *workers,
		MaxAttempts:     *attempts,
		RoundInterval:   *interval,
		MaxRounds:       *rounds,
		Pool:            pool,
		Store:           durable,
		CheckpointEvery: *ckptEvery,
		Counters:        counters,
		OnSnapshot: func(round int, f *dirauth.BandwidthFile) {
			if err := snapshot.Publish(round, f, time.Now()); err != nil {
				log.event("snapshot_error", "  snapshot render: "+err.Error(),
					"round", round, "error", err.Error())
			}
			submit(ctx, log, client, identity, *name, round, f, *submitTO)
		},
		OnRound: func(r coord.RoundReport) {
			log.event("round", r.String(),
				"round", r.Round, "relays", r.Relays, "conclusive", r.Conclusive,
				"inconclusive", r.Inconclusive, "estimates", len(r.Estimates),
				"duration_ms", float64(r.Duration)/float64(time.Millisecond))
		},
	}
	c, err := coord.New(cfg, []*core.BWAuth{auth}, source)
	if err != nil {
		return err
	}

	srv := obs.NewServer(obs.Config{Coordinator: c, Counters: counters, Snapshot: snapshot})
	if *httpAddr != "" {
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			return fmt.Errorf("bwauthd: observability server: %w", err)
		}
		log.event("http", fmt.Sprintf("observability: http://%s (/metrics /status /v3bw)", addr),
			"addr", addr.String())
	}

	log.event("start",
		fmt.Sprintf("bwauthd %s: %d relays, %d measurers; submitting to %s",
			*name, *relays, *measurers, orStandalone(*dirauthAddr)),
		"name", *name, "relays", *relays, "measurers", *measurers,
		"dirauth_addr", *dirauthAddr, "sim", *sim)
	runErr := c.Run(ctx)
	if runErr == context.Canceled {
		log.event("shutdown", "bwauthd: interrupted — in-flight slots cancelled and drained")
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	if err := srv.Shutdown(drainCtx); err != nil {
		log.event("shutdown_error", "bwauthd: http drain: "+err.Error(), "error", err.Error())
	}
	cancel()
	if !log.json {
		fmt.Print(counters.String())
	}
	return runErr
}

func orStandalone(addr string) string {
	if addr == "" {
		return "nobody (standalone)"
	}
	return addr
}

// submit signs this round's view and delivers it to the merge node. A
// *rpc.ServerError is a protocol-level rejection (stale after a restart
// republish, version skew) — logged, connection kept; transport errors
// already got the client's one redial retry, so what reaches here is a
// down or unreachable merge node, and the round simply goes unsubmitted
// (the next round retries with a fresh dial).
func submit(ctx context.Context, log *logger, client *rpc.Client, id wire.Identity,
	name string, round int, f *dirauth.BandwidthFile, timeout time.Duration) {
	if client == nil {
		return
	}
	body, _, err := f.Render()
	if err != nil {
		log.event("submit_error", "  submission render: "+err.Error(),
			"round", round, "error", err.Error())
		return
	}
	sub := &dirauth.Submission{
		BWAuth:  name,
		Round:   round,
		Version: dirauth.SubmissionVersionMax,
		Body:    body,
	}
	sub.Sign(id.Priv)
	callCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp, err := client.Call(callCtx, rpc.MethodSubmitV3BW, sub.Encode())
	var se *rpc.ServerError
	switch {
	case err == nil:
		log.event("submit", fmt.Sprintf("  submitted round %d: %s", round, resp),
			"round", round, "response", string(resp))
	case errors.As(err, &se):
		log.event("submit_rejected", fmt.Sprintf("  submission round %d rejected: %s", round, se.Msg),
			"round", round, "reason", se.Msg)
	default:
		log.event("submit_error", fmt.Sprintf("  submission round %d failed: %v", round, err),
			"round", round, "error", err.Error())
	}
}

// wireSetup builds the real-socket population for one BWAuth: wire
// targets on localhost listeners and a measurement team with
// authenticated connections (the same shape coordd uses, for one column).
func wireSetup(log *logger, authName string, relays, measurers int, baseMbit float64, p core.Params) (*core.BWAuth, coord.StaticRelays, *coord.Pool, func(), error) {
	ids := make([]wire.Identity, measurers)
	for i := range ids {
		var err error
		ids[i], err = wire.NewIdentity()
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	addrs := make(map[string]string, relays)
	source := make(coord.StaticRelays, 0, relays)
	var listeners []net.Listener
	cleanupListeners := func() {
		for _, l := range listeners {
			l.Close()
		}
	}
	for i := 0; i < relays; i++ {
		rname := fmt.Sprintf("relay%02d", i)
		rate := baseMbit * 1e6 * (1 + 0.5*float64(i))
		tgt := wire.NewTarget(wire.TargetConfig{RateBps: rate})
		for _, id := range ids {
			tgt.Authorize(id.Pub)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanupListeners()
			return nil, nil, nil, nil, err
		}
		listeners = append(listeners, l)
		go tgt.Serve(l)
		addrs[rname] = l.Addr().String()
		source = append(source, core.RelayEstimate{Name: rname, EstimateBps: rate})
		log.event("relay", fmt.Sprintf("%s: %s, capacity %.1f Mbit/s", rname, l.Addr(), rate/1e6),
			"name", rname, "addr", l.Addr().String(), "capacity_mbit", rate/1e6)
	}

	pool := coord.NewPool(4, 90*time.Second)
	members := make([]wire.Member, len(ids))
	for i := range ids {
		member := i
		members[i] = wire.Member{
			Identity: ids[i],
			Dial: func(target string) wire.Dialer {
				addr := addrs[target]
				key := fmt.Sprintf("%s/m%d", target, member)
				return pool.Dialer(key, func() (net.Conn, error) {
					return net.Dial("tcp", addr)
				})
			},
		}
	}
	team := make([]*core.Measurer, len(ids))
	for i := range team {
		team[i] = &core.Measurer{Name: fmt.Sprintf("m%d", i), CapacityBps: 500e6, Cores: 2}
	}
	backend := &wire.Backend{Members: members, CheckProb: p.CheckProb, Seed: time.Now().UnixNano()}
	cleanup := func() {
		cleanupListeners()
		pool.Close()
	}
	return core.NewBWAuth(authName, team, backend, p), source, pool, cleanup, nil
}
