module flashflow

go 1.24
